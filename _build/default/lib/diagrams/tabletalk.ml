(** TableTalk (Epstein 1991): "visualizes the flow of a query top-down and
    displays logical conditions in tiles".

    We model the tile stack: a SQL statement compiles to a vertical flow of
    tiles — source tiles (FROM), condition tiles (one per conjunct, with
    nested flows for subqueries), and an output tile — read strictly top to
    bottom.  The tile count and nesting depth are the formalism's cost
    metrics in the E6 comparison. *)

module A = Diagres_sql.Ast

type tile =
  | Source of string           (** [FROM Sailor s] *)
  | Condition of string        (** one predicate, rendered as text *)
  | Negated of flow            (** a NOT EXISTS block as a nested flow *)
  | Nested of string * flow    (** EXISTS / IN block *)
  | Output of string list

and flow = tile list

exception Tabletalk_error of string

let rec conds_to_tiles (c : A.cond) : tile list =
  match c with
  | A.True -> []
  | A.Cmp (op, x, y) ->
    [ Condition
        (Printf.sprintf "%s %s %s" (Diagres_sql.Pretty.expr x)
           (Diagres_logic.Fol.cmp_name op)
           (Diagres_sql.Pretty.expr y)) ]
  | A.And (a, b) -> conds_to_tiles a @ conds_to_tiles b
  | A.Or (a, b) ->
    (* TableTalk renders OR as one combined condition tile *)
    [ Condition
        (Printf.sprintf "(%s)"
           (String.concat " OR "
              (List.filter_map
                 (function Condition s -> Some s | _ -> None)
                 (conds_to_tiles a @ conds_to_tiles b)))) ]
  | A.Not (A.Exists q) -> [ Negated (of_query q) ]
  | A.Not inner ->
    [ Condition
        ("NOT ("
        ^ String.concat " AND "
            (List.filter_map
               (function Condition s -> Some s | _ -> None)
               (conds_to_tiles inner))
        ^ ")") ]
  | A.Exists q -> [ Nested ("EXISTS", of_query q) ]
  | A.In (e, q) -> [ Nested (Diagres_sql.Pretty.expr e ^ " IN", of_query q) ]

and of_query (q : A.query) : flow =
  List.map
    (fun t ->
      Source
        (if t.A.alias = t.A.name then t.A.name
         else t.A.name ^ " " ^ t.A.alias))
    q.A.from
  @ conds_to_tiles q.A.where
  @ [ Output
        (List.map
           (function
             | A.Star -> "*"
             | A.Item (e, None) -> Diagres_sql.Pretty.expr e
             | A.Item (e, Some a) -> Diagres_sql.Pretty.expr e ^ " AS " ^ a)
           q.A.select) ]

let of_sql (st : A.statement) : flow =
  match st with
  | A.Query q -> of_query q
  | _ -> raise (Tabletalk_error "TableTalk flows render one SELECT block")

let rec tile_count (f : flow) : int =
  List.fold_left
    (fun n t ->
      n
      + match t with
        | Source _ | Condition _ | Output _ -> 1
        | Negated sub | Nested (_, sub) -> 1 + tile_count sub)
    0 f

let rec depth (f : flow) : int =
  List.fold_left
    (fun d t ->
      max d
        (match t with
        | Source _ | Condition _ | Output _ -> 1
        | Negated sub | Nested (_, sub) -> 1 + depth sub))
    0 f

let to_ascii (f : flow) : string =
  let buf = Buffer.create 256 in
  let rec go indent f =
    let pad = String.make indent ' ' in
    List.iter
      (fun t ->
        match t with
        | Source s -> Buffer.add_string buf (pad ^ "[ FROM " ^ s ^ " ]\n")
        | Condition c -> Buffer.add_string buf (pad ^ "[ " ^ c ^ " ]\n")
        | Output cols ->
          Buffer.add_string buf
            (pad ^ "[ => " ^ String.concat ", " cols ^ " ]\n")
        | Negated sub ->
          Buffer.add_string buf (pad ^ "[ NOT EXISTS: ]\n");
          go (indent + 4) sub
        | Nested (label, sub) ->
          Buffer.add_string buf (pad ^ "[ " ^ label ^ ": ]\n");
          go (indent + 4) sub)
      f
  in
  go 0 f;
  Buffer.contents buf

let to_scene (f : flow) : Scene.t =
  let counter = ref 0 in
  let fresh p = incr counter; Printf.sprintf "%s%d" p !counter in
  let rec marks f =
    List.map
      (fun t ->
        match t with
        | Source s -> Scene.leaf ~role:Scene.Attribute_row ~id:(fresh "src") ("FROM " ^ s)
        | Condition c -> Scene.leaf ~role:Scene.Attribute_row ~id:(fresh "cond") c
        | Output cols ->
          Scene.leaf ~role:Scene.Constant_node ~id:(fresh "out")
            ("=> " ^ String.concat ", " cols)
        | Negated sub ->
          Scene.box ~title:"NOT EXISTS" ~role:Scene.Cut ~id:(fresh "neg")
            (marks sub)
        | Nested (label, sub) ->
          Scene.box ~title:label ~role:Scene.Group ~id:(fresh "nest")
            (marks sub))
      f
  in
  Scene.scene [ Scene.box ~role:Scene.Relation_box ~title:"flow" ~id:"tt" (marks f) ]

let to_svg f = Scene.to_svg (to_scene f)
