(** QueryVis diagrams (Danaparamita & Gatterbauer 2011; Leventidis et al.
    2020): logic-based SQL diagrams with quantifier {e groups} and a
    {e default reading order} shown by arrows.

    Tables become attribute-row boxes as in Relational Diagrams, but
    negation scopes are dashed groups labelled ∄ (not exists), and arrows
    between groups indicate how to read nested scopes — the device QueryVis
    borrows from constraint-diagram reading orders.  Without the arrows the
    quantifier order would be ambiguous, which is the precise trade-off
    against nesting that the tutorial dwells on. *)

module T = Diagres_rc.Trc

type t = {
  query : T.query;
  scene : Scene.t;
}

exception Not_drawable = Trc_scene.Disjunction

let group_id i = Printf.sprintf "group%d" i

let of_trc (q : T.query) : t =
  let tree = Trc_scene.of_query q in
  let used = Trc_scene.used_attrs q in
  let all_links, selections = Trc_scene.all_links_selections tree in
  let counter = ref 0 in
  let arrows = ref [] in
  (* each nesting level becomes a flat group box; arrows link parent group
     to child groups (the reading order) *)
  let rec build (lvl : Trc_scene.level) ~label : Scene.mark * string =
    incr counter;
    let my_id = group_id !counter in
    let range_marks =
      List.map (Trc_scene.range_mark ~used ~selections) lvl.Trc_scene.ranges
    in
    let child_marks =
      List.map
        (fun sub ->
          let mark, child_id = build sub ~label:"NOT EXISTS" in
          arrows :=
            Scene.link ~directed:true ~role:Scene.Reading_arrow my_id child_id
            :: !arrows;
          mark)
        lvl.Trc_scene.negs
    in
    ( Scene.box ~role:Scene.Group ~title:label ~horizontal:true ~id:my_id
        (range_marks @ child_marks),
      my_id )
  in
  let root_mark, _root_id = build tree ~label:"SELECT" in
  let result_marks =
    if q.T.head = [] then []
    else
      [ Scene.box ~role:Scene.Group ~title:"output" ~id:"result"
          (List.mapi
             (fun i t ->
               Scene.leaf ~role:Scene.Attribute_row
                 ~id:(Printf.sprintf "out%d" i)
                 (T.term_to_string t))
             q.T.head) ]
  in
  let output_links =
    List.concat
      (List.mapi
         (fun i t ->
           match t with
           | T.Field (v, a) ->
             [ Scene.link ~directed:true ~role:Scene.Reading_arrow
                 (Trc_scene.attr_row_id v a)
                 (Printf.sprintf "out%d" i) ]
           | T.Const _ -> [])
         q.T.head)
  in
  let scene =
    Scene.scene
      ~links:(Trc_scene.comparison_links all_links @ !arrows @ output_links)
      ~caption:("QueryVis: " ^ T.to_string q)
      (result_marks @ [ root_mark ])
  in
  { query = q; scene }

let of_sql schemas (st : Diagres_sql.Ast.statement) : t list =
  List.map of_trc (Diagres_sql.To_trc.statement schemas st)

let to_svg (d : t) = Scene.to_svg d.scene
let to_ascii (d : t) = Scene.to_ascii d.scene
let stats (d : t) = Scene.stats d.scene

(** The arrow count is QueryVis's extra visual-alphabet cost over
    Relational Diagrams for the same query — reported by experiment E6. *)
let arrow_count (d : t) = (Scene.stats d.scene).Scene.arrows
