(** Higraphs (Harel, CACM 1988): blobs with containment, intersection, and
    Cartesian-product partitions, plus edges — the visual formalism behind
    statecharts and, as the tutorial notes, one lens on ER/UML-style schema
    diagrams.

    We implement the graph-theoretic core — blob hierarchy, orthogonal
    components, hyperedges — together with the reading the tutorial cares
    about: a relational {e schema} as a higraph (relations are blobs whose
    orthogonal components are their attributes; foreign-key-style joins are
    edges), which is what "interactive query builder" interfaces actually
    draw. *)

type blob = {
  bid : string;
  label : string;
  children : blob list;        (** containment *)
  orthogonal : string list;    (** Cartesian components (attribute slots) *)
}

type edge = { src : string; dst : string; elabel : string option }

type t = { roots : blob list; edges : edge list }

exception Higraph_error of string

let blob ?(children = []) ?(orthogonal = []) ~label bid =
  { bid; label; children; orthogonal }

let rec all_blobs (b : blob) = b :: List.concat_map all_blobs b.children

let blobs (h : t) = List.concat_map all_blobs h.roots

let find (h : t) bid =
  match List.find_opt (fun b -> b.bid = bid) (blobs h) with
  | Some b -> b
  | None -> raise (Higraph_error ("unknown blob " ^ bid))

let create ?(edges = []) roots =
  let h = { roots; edges } in
  let ids = List.map (fun b -> b.bid) (blobs h) in
  let rec dup = function
    | [] -> ()
    | x :: rest ->
      if List.mem x rest then raise (Higraph_error ("duplicate blob id " ^ x))
      else dup rest
  in
  dup ids;
  List.iter
    (fun e ->
      ignore (find h e.src);
      ignore (find h e.dst))
    edges;
  h

(** Blob nesting depth — Harel's measure of hierarchical economy. *)
let depth (h : t) =
  let rec go (b : blob) =
    1 + List.fold_left (fun a c -> max a (go c)) 0 b.children
  in
  List.fold_left (fun a b -> max a (go b)) 0 h.roots

(** Number of atomic "states" the higraph denotes: orthogonal components
    multiply, children sum — Harel's succinctness argument made
    computable. *)
let rec denoted_states (b : blob) : int =
  let child_states =
    match b.children with
    | [] -> 1
    | cs -> List.fold_left (fun a c -> a + denoted_states c) 0 cs
  in
  child_states * max 1 (List.length b.orthogonal)

(* ------------------------------------------------------------------ *)
(* The schema-diagram reading.                                          *)

(** A database schema as a higraph: one blob per relation with its
    attributes as orthogonal components; edges connect name-equal attribute
    pairs across relations (the joinable pairs a query builder offers). *)
let of_schemas (schemas : (string * Diagres_data.Schema.t) list) : t =
  let roots =
    List.map
      (fun (name, s) ->
        blob ~label:name ~orthogonal:(Diagres_data.Schema.names s) name)
      schemas
  in
  let edges =
    List.concat_map
      (fun (n1, s1) ->
        List.concat_map
          (fun (n2, s2) ->
            if n1 >= n2 then []
            else
              List.filter_map
                (fun a ->
                  if Diagres_data.Schema.mem a s2 then
                    Some { src = n1; dst = n2; elabel = Some a }
                  else None)
                (Diagres_data.Schema.names s1))
          schemas)
      schemas
  in
  create ~edges roots

(* ------------------------------------------------------------------ *)
(* Rendering.                                                           *)

let to_scene (h : t) : Scene.t =
  let rec mark (b : blob) : Scene.mark =
    let attr_leaves =
      List.map
        (fun a ->
          Scene.leaf ~role:Scene.Attribute_row ~id:(b.bid ^ ":" ^ a) a)
        b.orthogonal
    in
    Scene.box ~role:Scene.Relation_box ~title:b.label ~id:b.bid
      (attr_leaves @ List.map mark b.children)
  in
  let links =
    List.map
      (fun e ->
        match e.elabel with
        | Some a ->
          Scene.link ~label:a ~role:Scene.Join_edge (e.src ^ ":" ^ a)
            (e.dst ^ ":" ^ a)
        | None -> Scene.link ~role:Scene.Join_edge e.src e.dst)
      h.edges
  in
  Scene.scene ~links (List.map mark h.roots)

let to_svg h = Scene.to_svg (to_scene h)
let to_ascii h = Scene.to_ascii (to_scene h)
