(** DataPlay (Abouzied, Hellerstein & Silberschatz, UIST 2012): queries as
    {e quantifier trees} that the user tweaks — most famously flipping a
    quantifier between "any" (∃) and "all" (∀) — while watching the
    matching and non-matching data change.

    We model the quantifier tree for the sailors schema directly: an
    {e anchor} table whose rows are being selected, and a tree of child
    scopes each marked ∃ or ∀, with predicate leaves.  [matches] computes
    the matching/non-matching partition (the UI's two panes), and
    {!flip} is the paper's one-click ∃↔∀ correction — the operation whose
    effect on Q1-vs-Q3-style mistakes DataPlay was built to explain. *)

module T = Diagres_rc.Trc
module F = Diagres_logic.Fol

type quantifier = Any | All

type tree = {
  var : string;
  table : string;
  quantifier : quantifier;
  predicates : (F.cmp * T.term * T.term) list;
  children : tree list;
}

type t = {
  anchor_var : string;
  anchor_table : string;
  root_predicates : (F.cmp * T.term * T.term) list;
  scopes : tree list;
}

let node ?(quantifier = Any) ?(predicates = []) ?(children = []) var table =
  { var; table; quantifier; predicates; children }

let query ?(root_predicates = []) ~anchor_var ~anchor_table scopes =
  { anchor_var; anchor_table; root_predicates; scopes }

(** Flip the quantifier at the scope addressed by a path of variable
    names — DataPlay's signature interaction. *)
let rec flip_tree path (t : tree) : tree =
  match path with
  | [] -> invalid_arg "flip: empty path"
  | [ v ] when v = t.var ->
    { t with quantifier = (match t.quantifier with Any -> All | All -> Any) }
  | v :: rest when v = t.var ->
    { t with children = List.map (flip_tree rest) t.children }
  | _ -> t

let flip (q : t) ~path : t =
  { q with scopes = List.map (flip_tree path) q.scopes }

(* ------------------------------------------------------------------ *)
(* Semantics via TRC.                                                   *)

let rec formula_of_tree (t : tree) : T.formula =
  let preds = List.map (fun (op, a, b) -> T.Cmp (op, a, b)) t.predicates in
  let children = List.map formula_of_tree t.children in
  let body = T.conj (preds @ children) in
  match t.quantifier with
  | Any -> T.Exists ([ (t.var, t.table) ], body)
  | All ->
    (* ∀ over the *relevant* children: DataPlay's reading is "for all rows
       of this table satisfying the join predicates, the rest holds"; we
       take the first predicate group as the range condition *)
    T.Forall
      ( [ (t.var, t.table) ],
        T.Implies (T.conj preds, T.conj (match children with [] -> [ T.True ] | cs -> cs)) )

let to_trc (q : t) : T.query =
  {
    T.head = [ T.Field (q.anchor_var, "sid") ];
    ranges = [ (q.anchor_var, q.anchor_table) ];
    body =
      T.conj
        (List.map (fun (op, a, b) -> T.Cmp (op, a, b)) q.root_predicates
        @ List.map formula_of_tree q.scopes);
  }

(** The two panes: anchor rows matching the query, and the rest. *)
let matches db (q : t) :
    Diagres_data.Relation.t * Diagres_data.Relation.t =
  let matching = T.eval db (to_trc q) in
  let anchor =
    Diagres_data.Relation.project [ "sid" ]
      (Diagres_data.Database.find q.anchor_table db)
  in
  (matching, Diagres_data.Relation.diff anchor matching)

(* ------------------------------------------------------------------ *)
(* Scene: the quantifier tree as nested groups labelled any/all.        *)

let rec tree_mark (t : tree) : Scene.mark =
  let pred_leaves =
    List.mapi
      (fun i (op, a, b) ->
        Scene.leaf ~role:Scene.Attribute_row
          ~id:(Printf.sprintf "dp:%s:p%d" t.var i)
          (Printf.sprintf "%s %s %s" (T.term_to_string a)
             (Diagres_logic.Fol.cmp_name op) (T.term_to_string b)))
      t.predicates
  in
  Scene.box
    ~title:
      (Printf.sprintf "%s %s %s"
         (match t.quantifier with Any -> "ANY" | All -> "ALL")
         t.table t.var)
    ~role:(match t.quantifier with Any -> Scene.Group | All -> Scene.Cut)
    ~id:("dp:" ^ t.var)
    (pred_leaves @ List.map tree_mark t.children)

let to_scene (q : t) : Scene.t =
  Scene.scene
    [ Scene.box ~title:(q.anchor_table ^ " " ^ q.anchor_var)
        ~role:Scene.Relation_box ~id:"dp:anchor"
        (List.map tree_mark q.scopes) ]

let to_svg q = Scene.to_svg (to_scene q)
let to_ascii q = Scene.to_ascii (to_scene q)
