(** Safe-range analysis for DRC formulas (Abiteboul–Hull–Vianu, ch. 5.4).

    A DRC query is {e safe-range} when every free variable is "range
    restricted": bound to a relation column or (transitively, through
    equalities) to a constant.  Safe-range DRC, safe TRC, RA, and
    non-recursive Datalog are equi-expressive — the equivalence the
    tutorial's language backbone rests on.  Range-coupled TRC is safe by
    construction; this module provides the DRC side. *)

module F = Diagres_logic.Fol

(** Put a formula in {e safe-range normal form}: no ∀, no ⇒, no ¬¬, and
    quantifier blocks flattened.  (Negations are {e not} pushed through
    ∧/∨ — SRNF keeps them where they are.) *)
let rec srnf (f : F.t) : F.t =
  match f with
  | F.True | F.False | F.Pred _ | F.Cmp _ -> f
  | F.Not g -> (
    match srnf g with F.Not h -> h | h -> F.Not h)
  | F.And (a, b) -> F.And (srnf a, srnf b)
  | F.Or (a, b) -> F.Or (srnf a, srnf b)
  | F.Implies (a, b) -> srnf (F.Or (F.Not a, b))
  | F.Exists (x, g) -> F.Exists (x, srnf g)
  | F.Forall (x, g) -> srnf (F.Not (F.Exists (x, F.Not g)))

module Sset = Set.Make (String)

exception Unsafe of string

(* Range-restricted variables of an SRNF formula.  Raises [Unsafe] when a
   quantified variable is not restricted within its scope. *)
let rec rr (f : F.t) : Sset.t =
  match f with
  | F.True | F.False -> Sset.empty
  | F.Pred (_, ts) ->
    List.fold_left
      (fun acc t -> match t with F.Var x -> Sset.add x acc | F.Const _ -> acc)
      Sset.empty ts
  | F.Cmp (F.Eq, F.Var x, F.Const _) | F.Cmp (F.Eq, F.Const _, F.Var x) ->
    Sset.singleton x
  | F.Cmp _ -> Sset.empty
  | F.And _ ->
    (* collect conjuncts, then propagate x=y equalities to a fixpoint *)
    let rec conjuncts = function
      | F.And (a, b) -> conjuncts a @ conjuncts b
      | g -> [ g ]
    in
    let cs = conjuncts f in
    let base =
      List.fold_left (fun acc c -> Sset.union acc (rr c)) Sset.empty cs
    in
    let eqs =
      List.filter_map
        (function
          | F.Cmp (F.Eq, F.Var x, F.Var y) -> Some (x, y)
          | _ -> None)
        cs
    in
    let rec propagate s =
      let s' =
        List.fold_left
          (fun s (x, y) ->
            if Sset.mem x s || Sset.mem y s then Sset.add x (Sset.add y s)
            else s)
          s eqs
      in
      if Sset.equal s s' then s else propagate s'
    in
    propagate base
  | F.Or (a, b) -> Sset.inter (rr a) (rr b)
  | F.Not g ->
    ignore (rr g);
    Sset.empty
  | F.Exists (x, g) ->
    let s = rr g in
    if Sset.mem x s then Sset.remove x s
    else raise (Unsafe (Printf.sprintf "quantified variable %s is not range restricted" x))
  | F.Forall _ | F.Implies _ ->
    invalid_arg "rr: formula not in SRNF"

(** [safe_range f] decides whether the formula is safe-range: all free
    variables range restricted and all quantified variables restricted in
    their scopes. *)
let safe_range (f : F.t) : bool =
  let f = srnf f in
  match rr f with
  | s -> Sset.subset (Sset.of_list (F.free_var_list f)) s
  | exception Unsafe _ -> false

(** Like {!safe_range} but explains a failure. *)
let check (f : F.t) : (unit, string) result =
  let g = srnf f in
  match rr g with
  | s ->
    let missing =
      List.filter (fun x -> not (Sset.mem x s)) (F.free_var_list g)
    in
    if missing = [] then Ok ()
    else
      Error
        (Printf.sprintf "free variable(s) not range restricted: %s"
           (String.concat ", " missing))
  | exception Unsafe msg -> Error msg

let safe_query (q : Drc.query) = safe_range q.Drc.body

(** Witness of domain dependence for an unsafe query: evaluating under the
    active domain vs. the active domain extended with one fresh constant
    gives different answers.  Used by tests and by the Part-4 discussion of
    beta-graph semantics. *)
let domain_dependence_witness db (q : Drc.query) =
  let module D = Diagres_data in
  let st0 = Diagres_logic.Structure.for_formula q.Drc.body db in
  let fresh = D.Value.Int 982_451_653 in
  let st1 =
    { st0 with
      Diagres_logic.Structure.universe =
        fresh :: st0.Diagres_logic.Structure.universe }
  in
  let a0 = Diagres_logic.Structure.answers st0 ~order:q.Drc.head q.Drc.body in
  let a1 = Diagres_logic.Structure.answers st1 ~order:q.Drc.head q.Drc.body in
  if a0 = a1 then None else Some (a0, a1)
