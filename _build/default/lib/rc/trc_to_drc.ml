(** TRC → DRC translation.

    Each tuple variable [t] ranging over relation [R(a₁,…,aₖ)] becomes k
    domain variables [t_a₁ … t_aₖ] together with the atom [R(t_a₁,…,t_aₖ)].
    Quantifier blocks translate as

    - [∃t∈R : φ]   ↦  [∃ t_a₁ … t_aₖ (R(…) ∧ φ′)]
    - [∀t∈R : φ]   ↦  [∀ t_a₁ … t_aₖ (R(…) → φ′)]

    and free ranges contribute their atom as a conjunct of the body, with
    non-head attributes left free (DRC heads must list every free variable,
    so the query head is the full tuple of head fields). *)

module F = Diagres_logic.Fol

exception Unsupported of string

let var_name v a = Diagres_logic.Names.sanitize (v ^ "_" ^ a)

let term_to_fol = function
  | Trc.Field (v, a) -> F.Var (var_name v a)
  | Trc.Const c -> F.Const c

(** The atom [R(v_a1, …, v_ak)] for a range declaration. *)
let range_atom schemas (v, r) =
  match List.assoc_opt r schemas with
  | None -> Trc.type_error "unknown relation %S" r
  | Some schema ->
    F.Pred (r, List.map (fun a -> F.Var (var_name v a)) (Diagres_data.Schema.names schema))

let range_vars schemas (v, r) =
  match List.assoc_opt r schemas with
  | None -> Trc.type_error "unknown relation %S" r
  | Some schema ->
    List.map (fun a -> var_name v a) (Diagres_data.Schema.names schema)

let rec formula schemas (f : Trc.formula) : F.t =
  match f with
  | Trc.True -> F.True
  | Trc.False -> F.False
  | Trc.Cmp (op, a, b) -> F.Cmp (op, term_to_fol a, term_to_fol b)
  | Trc.Not g -> F.Not (formula schemas g)
  | Trc.And (a, b) -> F.And (formula schemas a, formula schemas b)
  | Trc.Or (a, b) -> F.Or (formula schemas a, formula schemas b)
  | Trc.Implies (a, b) -> F.Implies (formula schemas a, formula schemas b)
  | Trc.Exists (rs, g) ->
    let inner =
      List.fold_left
        (fun acc r -> F.And (acc, range_atom schemas r))
        (range_atom schemas (List.hd rs))
        (List.tl rs)
    in
    let body = F.And (inner, formula schemas g) in
    F.exists_many (List.concat_map (range_vars schemas) rs) body
  | Trc.Forall (rs, g) ->
    let inner =
      List.fold_left
        (fun acc r -> F.And (acc, range_atom schemas r))
        (range_atom schemas (List.hd rs))
        (List.tl rs)
    in
    let body = F.Implies (inner, formula schemas g) in
    F.forall_many (List.concat_map (range_vars schemas) rs) body

(** Translate a full query.  Head terms must be distinct fields (DRC heads
    are variable lists); attributes of free tuple variables that are not in
    the head get existentially quantified. *)
let query schemas (q : Trc.query) : Drc.query =
  ignore (Trc.typecheck schemas q);
  let head_vars =
    List.map
      (function
        | Trc.Field (v, a) -> var_name v a
        | Trc.Const _ ->
          raise (Unsupported "constant in TRC head has no DRC counterpart"))
      q.Trc.head
  in
  let dups =
    List.filter
      (fun v -> List.length (List.filter (( = ) v) head_vars) > 1)
      head_vars
  in
  if dups <> [] then
    raise
      (Unsupported
         ("repeated head field cannot be a DRC head: " ^ List.hd dups));
  let body0 = formula schemas q.Trc.body in
  let body1 =
    List.fold_left
      (fun acc r -> F.And (range_atom schemas r, acc))
      body0 (List.rev q.Trc.ranges)
  in
  (* existentially close every free-range variable that is not in the head *)
  let all_range_vars = List.concat_map (range_vars schemas) q.Trc.ranges in
  let to_close = List.filter (fun v -> not (List.mem v head_vars)) all_range_vars in
  let body = F.exists_many to_close body1 in
  { Drc.head = head_vars; body }

(** Boolean statements translate directly. *)
let sentence schemas (f : Trc.formula) : F.t = formula schemas f
