(** Parser for the TRC concrete syntax printed by {!Trc.to_string}:

    {v
    { s.sid | s in Sailor : exists r in Reserves
        (r.sid = s.sid and exists b in Boat (b.bid = r.bid and b.color = 'red')) }
    v} *)

module S = Diagres_parsekit.Stream
module L = Diagres_parsekit.Lexer

exception Parse_error = S.Parse_error

let keywords =
  [ "in"; "and"; "or"; "not"; "implies"; "exists"; "forall"; "true"; "false" ]

let split_field s stream =
  match String.index_opt s '.' with
  | Some i ->
    Trc.Field (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
  | None -> S.error stream (Printf.sprintf "expected qualified field, got %S" s)

let term s : Trc.term =
  match S.peek s with
  | L.Ident x when not (List.mem x keywords) ->
    S.advance s;
    split_field x s
  | _ -> Trc.Const (S.value s)

let range s =
  let v = S.ident_not s keywords in
  S.expect_kw s "in";
  let r = S.ident_not s keywords in
  (v, r)

let range_list s = S.sep_list1 s ~sep:"," range

let rec formula s : Trc.formula =
  let a = or_formula s in
  if S.eat_kw s "implies" then Trc.Implies (a, formula s) else a

and or_formula s =
  let a = ref (and_formula s) in
  while S.at_kw s "or" do
    S.advance s;
    a := Trc.Or (!a, and_formula s)
  done;
  !a

and and_formula s =
  let a = ref (unary s) in
  while S.at_kw s "and" do
    S.advance s;
    a := Trc.And (!a, unary s)
  done;
  !a

and unary s =
  if S.eat_kw s "not" then Trc.Not (unary s)
  else if S.eat_kw s "true" then Trc.True
  else if S.eat_kw s "false" then Trc.False
  else if S.at_kw s "exists" || S.at_kw s "forall" then begin
    let is_exists = S.at_kw s "exists" in
    S.advance s;
    let rs = range_list s in
    S.expect_sym s "(";
    let f = formula s in
    S.expect_sym s ")";
    if is_exists then Trc.Exists (rs, f) else Trc.Forall (rs, f)
  end
  else if S.at_sym s "(" then begin
    S.expect_sym s "(";
    let f = formula s in
    S.expect_sym s ")";
    f
  end
  else begin
    let a = term s in
    match S.cmp_op s with
    | Some op -> Trc.Cmp (op, a, term s)
    | None -> S.error s "expected comparison operator"
  end

let parse src : Trc.query =
  let s = S.make ~ident_dot:true src in
  S.expect_sym s "{";
  let head =
    if S.at_sym s "|" then []
    else S.sep_list1 s ~sep:"," term
  in
  S.expect_sym s "|";
  let ranges =
    if S.at_sym s "}" || S.at_sym s ":" then []
    else
      (* ranges end at ':' (body follows) or '}' (pure range query) *)
      S.sep_list1 s ~sep:"," range
  in
  let body =
    if S.eat_sym s ":" then formula s
    else Trc.True
  in
  S.expect_sym s "}";
  S.expect_eof s;
  { Trc.head; ranges; body }
