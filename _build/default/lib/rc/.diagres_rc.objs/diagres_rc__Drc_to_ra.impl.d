lib/rc/drc_to_ra.ml: Diagres_data Diagres_logic Diagres_ra Drc Hashtbl List String
