lib/rc/ra_rewrite.ml: Diagres_data Diagres_logic Diagres_ra List
