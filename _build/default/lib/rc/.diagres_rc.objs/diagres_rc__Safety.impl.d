lib/rc/safety.ml: Diagres_data Diagres_logic Drc List Printf Set String
