lib/rc/drc_parser.ml: Diagres_logic Diagres_parsekit Drc List
