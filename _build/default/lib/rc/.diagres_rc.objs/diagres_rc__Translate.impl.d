lib/rc/translate.ml: Diagres_data Diagres_ra Drc Drc_to_ra List Ra_to_drc Ra_to_trc Trc Trc_to_drc
