lib/rc/ra_to_trc.ml: Diagres_data Diagres_logic Diagres_ra List Ra_rewrite String Trc
