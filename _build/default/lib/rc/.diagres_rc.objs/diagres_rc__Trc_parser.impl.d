lib/rc/trc_parser.ml: Diagres_parsekit List Printf String Trc
