lib/rc/trc.ml: Diagres_data Diagres_logic Fmt Format List Printf String
