lib/rc/ra_to_drc.ml: Diagres_data Diagres_logic Diagres_ra Drc List Printf Ra_rewrite
