lib/rc/trc_to_drc.ml: Diagres_data Diagres_logic Drc List Trc
