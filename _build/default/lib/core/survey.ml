(** The Part-5 survey as a machine-checkable capability matrix.

    Rows are the systems and formalisms the tutorial discusses; columns are
    the discriminating capabilities its narrative uses.  For the formalisms
    this library implements, the matrix entries are {e verified} by
    experiment E10 (e.g. "supports division in one panel" is checked by
    actually drawing Q3); for the surveyed commercial tools they record the
    paper's findings. *)

type support = Yes | No | Partial

type system = {
  name : string;
  year : int;
  basis : string;  (** RA / TRC / DRC / SQL / ER / FOL *)
  relationally_complete : support;
  nested_negation : support;    (** visual NOT EXISTS / universal *)
  disjunction : support;        (** union in one diagram *)
  non_equi_joins : support;
  query_visualization : support;  (** reverse direction: query → diagram *)
  implemented_here : bool;      (** reproduced in this library *)
}

let sys name year basis ~rc ~neg ~disj ~theta ~qv ~impl =
  { name; year; basis; relationally_complete = rc; nested_negation = neg;
    disjunction = disj; non_equi_joins = theta; query_visualization = qv;
    implemented_here = impl }

let systems =
  [
    sys "Begriffsschrift" 1879 "FOL" ~rc:Yes ~neg:Yes ~disj:Yes ~theta:Partial
      ~qv:Yes ~impl:true;
    sys "Euler circles" 1768 "monadic FOL" ~rc:No ~neg:Partial ~disj:No
      ~theta:No ~qv:Yes ~impl:true;
    sys "Venn diagrams" 1880 "monadic FOL" ~rc:No ~neg:Yes ~disj:No ~theta:No
      ~qv:Yes ~impl:true;
    sys "Venn-Peirce" 1933 "monadic FOL" ~rc:No ~neg:Yes ~disj:Partial
      ~theta:No ~qv:Yes ~impl:true;
    sys "Existential graphs (beta)" 1933 "DRC (Boolean)" ~rc:Partial ~neg:Yes
      ~disj:Partial ~theta:Partial ~qv:Yes ~impl:true;
    sys "Conceptual graphs" 1976 "FOL" ~rc:Partial ~neg:Partial ~disj:Partial
      ~theta:Partial ~qv:Yes ~impl:true;
    sys "QBE" 1977 "DRC" ~rc:Yes ~neg:Partial ~disj:Partial ~theta:Partial
      ~qv:No ~impl:true;
    sys "Higraphs" 1988 "sets/graphs" ~rc:No ~neg:No ~disj:Partial
      ~theta:No ~qv:Partial ~impl:true;
    sys "QBD*" 1990 "ER" ~rc:Yes ~neg:Partial ~disj:Partial ~theta:Partial
      ~qv:No ~impl:false;
    sys "Constraint diagrams" 1997 "FOL (sets)" ~rc:Partial ~neg:Yes
      ~disj:Partial ~theta:No ~qv:Yes ~impl:true;
    sys "TableTalk" 1991 "SQL" ~rc:Partial ~neg:Partial ~disj:Partial
      ~theta:Partial ~qv:No ~impl:false;
    sys "Object-oriented VQL" 1993 "OO" ~rc:Partial ~neg:Yes ~disj:Partial
      ~theta:Partial ~qv:No ~impl:false;
    sys "DFQL" 1994 "RA" ~rc:Yes ~neg:Yes ~disj:Yes ~theta:Yes ~qv:Yes
      ~impl:true;
    sys "Visual SQL" 2003 "SQL" ~rc:Yes ~neg:Partial ~disj:Partial ~theta:Yes
      ~qv:Yes ~impl:false;
    (* modelled by Diagres_diagrams.Query_builder; the "no" entries are
       verified by its obstacle analysis (experiment E10) *)
    sys "dbForge (builder model)" 2019 "SQL" ~rc:Partial ~neg:No ~disj:Partial
      ~theta:No ~qv:Partial ~impl:true;
    sys "SSMS / Access / pgAdmin3" 2019 "SQL" ~rc:Partial ~neg:No ~disj:No
      ~theta:Partial ~qv:Partial ~impl:false;
    sys "QueryVis" 2011 "TRC" ~rc:Partial ~neg:Yes ~disj:No ~theta:Yes
      ~qv:Yes ~impl:true;
    sys "DataPlay" 2012 "nested UR" ~rc:Partial ~neg:Yes ~disj:Partial
      ~theta:Partial ~qv:Yes ~impl:true;
    sys "SIEUFERD" 2016 "SQL" ~rc:Partial ~neg:Partial ~disj:Partial
      ~theta:Yes ~qv:Yes ~impl:false;
    sys "SQLVis" 2021 "SQL" ~rc:Partial ~neg:Partial ~disj:Partial ~theta:Yes
      ~qv:Yes ~impl:true;
    sys "String diagrams" 2020 "FOL" ~rc:Yes ~neg:Yes ~disj:Partial
      ~theta:Partial ~qv:Yes ~impl:true;
    sys "Relational Diagrams" 2024 "TRC" ~rc:Partial ~neg:Yes ~disj:Partial
      ~theta:Yes ~qv:Yes ~impl:true;
  ]

let support_to_string = function Yes -> "yes" | No -> "no" | Partial -> "±"

let to_table () : string =
  let buf = Buffer.create 2048 in
  let col w s = s ^ String.make (max 1 (w - String.length s)) ' ' in
  Buffer.add_string buf
    (col 28 "system" ^ col 6 "year" ^ col 14 "basis" ^ col 10 "complete"
    ^ col 9 "¬nested" ^ col 7 "∨" ^ col 7 "θ-join" ^ col 9 "q-viz"
    ^ "here\n");
  Buffer.add_string buf (String.make 92 '-' ^ "\n");
  List.iter
    (fun s ->
      Buffer.add_string buf
        (col 28 s.name
        ^ col 6 (string_of_int s.year)
        ^ col 14 s.basis
        ^ col 10 (support_to_string s.relationally_complete)
        ^ col 9 (support_to_string s.nested_negation)
        ^ col 7 (support_to_string s.disjunction)
        ^ col 7 (support_to_string s.non_equi_joins)
        ^ col 9 (support_to_string s.query_visualization)
        ^ (if s.implemented_here then "✓" else "")
        ^ "\n"))
    systems;
  Buffer.contents buf

let implemented = List.filter (fun s -> s.implemented_here) systems
