lib/core/survey.ml: Buffer List String
