lib/core/principles.ml: Diagres_diagrams Diagres_logic Diagres_rc List Pattern Printf String
