lib/core/catalog.ml: Diagres_data Diagres_datalog Diagres_ra Diagres_rc Diagres_sql List
