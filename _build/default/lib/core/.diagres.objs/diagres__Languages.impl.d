lib/core/languages.ml: Diagres_data Diagres_datalog Diagres_parsekit Diagres_ra Diagres_rc Diagres_sql List String
