lib/core/pattern.ml: Diagres_data Diagres_diagrams Diagres_logic Diagres_rc Hashtbl List Printf String
