lib/core/pipeline.ml: Diagres_data Diagres_diagrams Diagres_rc Languages List String
