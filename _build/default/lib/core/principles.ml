(** Principles of query visualization (Part 2; Gatterbauer et al., DEBull
    2022 [27], recast in Algebraic-Visualization-Design terms [37]) as
    executable checks.

    The principles are objectives, not axioms; each check returns evidence
    rather than a bare Boolean where that is more informative.

    - {b P1 Invertibility} (no information loss): the diagram determines
      the query up to pattern equivalence.
    - {b P2 Unambiguity}: one diagram, one reading — alternative reading
      conventions must agree.
    - {b P3 Correspondence}: queries with the same relational pattern get
      the same diagram; pattern differences show as diagram differences.
    - {b P4 Economy}: the visual alphabet in use should be small; we count
      distinct mark and link roles.
    - {b P5 Pattern faithfulness}: diagram complexity should track pattern
      complexity (monotone in variables/predicates/negation depth). *)

module T = Diagres_rc.Trc
module RD = Diagres_diagrams.Relational_diagram
module Scene = Diagres_diagrams.Scene

type verdict = { principle : string; holds : bool; evidence : string }

(** P1 for Relational Diagrams: regenerate the query from the diagram and
    compare patterns. *)
let invertibility_rd (q : T.query) : verdict =
  let rd = RD.of_trc q in
  let back = List.hd (RD.to_trc rd) in
  let holds = Pattern.same_pattern q back in
  {
    principle = "P1 invertibility (Relational Diagram)";
    holds;
    evidence =
      if holds then "diagram → TRC reproduces the source pattern"
      else
        Printf.sprintf "pattern changed: %s vs %s"
          (Pattern.canonical_string `Literal q)
          (Pattern.canonical_string `Literal back);
  }

(** P2 for beta graphs: outermost vs innermost ligature readings must agree
    on a reference database.  Crossing ligatures are exactly the marks that
    put this principle at risk (the tutorial's "imperfect mapping"). *)
let unambiguity_beta db (sentence : Diagres_logic.Fol.t) : verdict =
  let g = Diagres_diagrams.Eg_beta.of_drc sentence in
  let outer = Diagres_diagrams.Eg_beta.to_drc g in
  let inner = Diagres_diagrams.Eg_beta.to_drc_innermost g in
  let agree =
    Diagres_rc.Drc.eval_sentence db outer
    = Diagres_rc.Drc.eval_sentence db inner
  in
  let crossings = Diagres_diagrams.Eg_beta.crossing_ligatures g in
  {
    principle = "P2 unambiguity (beta graph readings)";
    holds = agree;
    evidence =
      Printf.sprintf "%d ligatures cross cuts; readings %s"
        (List.length crossings)
        (if agree then "agree on this database" else "DISAGREE");
  }

(** P3: two pattern-equal queries must produce scenes with identical
    statistics (a necessary condition for isomorphic diagrams). *)
let correspondence_rd (q1 : T.query) (q2 : T.query) : verdict =
  let stats q = List.hd (RD.stats (RD.of_trc q)) in
  let same_pattern = Pattern.same_pattern ~abstraction:`Shape q1 q2 in
  let same_stats = stats q1 = stats q2 in
  {
    principle = "P3 correspondence (pattern ↔ diagram)";
    holds = (not same_pattern) || same_stats;
    evidence =
      Printf.sprintf "patterns %s, diagram statistics %s"
        (if same_pattern then "equal" else "differ")
        (if same_stats then "equal" else "differ");
  }

(** P4: visual-alphabet size of a scene. *)
let economy (scene : Scene.t) : verdict =
  let mark_roles =
    List.sort_uniq compare
      (List.map
         (function
           | Scene.Box b -> b.Scene.role
           | Scene.Leaf l -> l.role)
         (Scene.all_marks scene))
  in
  let link_roles =
    List.sort_uniq compare
      (List.map (fun l -> l.Scene.link_role) scene.Scene.links)
  in
  let n = List.length mark_roles + List.length link_roles in
  {
    principle = "P4 economy (alphabet size)";
    holds = n <= 6;
    evidence = Printf.sprintf "%d mark roles + %d link roles" (List.length mark_roles) (List.length link_roles);
  }

(** P5: scene complexity grows monotonically with pattern complexity along
    a query chain (caller provides the chain, e.g. Q1 ⊂ Q2 ⊂ Q3). *)
let faithfulness_rd (chain : T.query list) : verdict =
  let sizes =
    List.map
      (fun q ->
        let s = List.hd (RD.stats (RD.of_trc q)) in
        s.Scene.boxes + s.Scene.links)
      chain
  in
  let rec monotone = function
    | a :: (b :: _ as rest) -> a <= b && monotone rest
    | _ -> true
  in
  {
    principle = "P5 pattern faithfulness";
    holds = monotone sizes;
    evidence =
      Printf.sprintf "diagram sizes along chain: %s"
        (String.concat " ≤ " (List.map string_of_int sizes));
  }

let verdict_to_string v =
  Printf.sprintf "[%s] %s — %s"
    (if v.holds then "ok" else "VIOLATED")
    v.principle v.evidence
