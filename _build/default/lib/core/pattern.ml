(** Relational query patterns (Gatterbauer & Dunne [26]).

    Two queries share a {e pattern} when one maps onto the other by a
    bijection of tuple variables that preserves ranges, predicates, and the
    nesting structure of negation — the notion underlying the
    "correspondence principle" of query visualization: queries with the
    same pattern should receive the same diagram (up to layout).

    We canonicalize the {!Diagres_diagrams.Trc_scene.level} tree: levels
    are sorted by a structural key, variables are renumbered in canonical
    traversal order, and the result is printed to a canonical string.
    Pattern equivalence is string equality of canonical forms; constants
    can be kept ([`Literal]) or abstracted ([`Shape]). *)

module T = Diagres_rc.Trc
module TS = Diagres_diagrams.Trc_scene

type abstraction = [ `Literal | `Shape ]

(* Canonical form of a level tree, as a structured sexp-ish string.  To make
   renumbering order-independent we canonicalize bottom-up: children are
   sorted by their canonical string computed with *local* variable numbers,
   then the final pass renumbers variables globally in traversal order. *)

let const_key abstraction c =
  match abstraction with
  | `Literal -> Diagres_data.Value.to_literal c
  | `Shape -> "<const>"

(* step 1: sort predicates and sublevels by a var-name-independent key *)
let rec presort (lvl : TS.level) : TS.level =
  let ranges = List.sort (fun (_, r1) (_, r2) -> compare r1 r2) lvl.TS.ranges in
  let preds =
    List.sort
      (fun (op1, _, _) (op2, _, _) -> compare op1 op2)
      lvl.TS.preds
  in
  let negs = List.map presort lvl.TS.negs in
  let negs = List.sort (fun a b -> compare (skeleton a) (skeleton b)) negs in
  { TS.ranges; preds; negs }

(* var-free skeleton used only for ordering *)
and skeleton (lvl : TS.level) : string =
  Printf.sprintf "L[%s][%d][%s]"
    (String.concat "," (List.map snd lvl.TS.ranges))
    (List.length lvl.TS.preds)
    (String.concat ";" (List.map skeleton lvl.TS.negs))

(* step 2: renumber variables in traversal order and print *)
let canonical_string abstraction (q : T.query) : string =
  let lvl = presort (TS.of_query q) in
  let numbering = Hashtbl.create 16 in
  let next = ref 0 in
  let var v =
    match Hashtbl.find_opt numbering v with
    | Some n -> Printf.sprintf "v%d" n
    | None ->
      incr next;
      Hashtbl.add numbering v !next;
      Printf.sprintf "v%d" !next
  in
  let term = function
    | T.Field (v, a) -> Printf.sprintf "%s.%s" (var v) a
    | T.Const c -> const_key abstraction c
  in
  let rec print (lvl : TS.level) : string =
    let ranges =
      List.map (fun (v, r) -> Printf.sprintf "%s:%s" (var v) r) lvl.TS.ranges
    in
    let preds =
      (* normalize operand order of symmetric comparisons *)
      List.map
        (fun (op, a, b) ->
          let sa = term a and sb = term b in
          let op, sa, sb =
            if (op = Diagres_logic.Fol.Eq || op = Diagres_logic.Fol.Neq) && sb < sa
            then (op, sb, sa)
            else (op, sa, sb)
          in
          Printf.sprintf "%s%s%s" sa (Diagres_logic.Fol.cmp_name op) sb)
        lvl.TS.preds
      |> List.sort compare
    in
    Printf.sprintf "{%s|%s|%s}"
      (String.concat "," ranges)
      (String.concat "," preds)
      (String.concat ";" (List.map print lvl.TS.negs))
  in
  let body = print lvl in
  let head = List.map term q.T.head in
  Printf.sprintf "%s <- %s" (String.concat "," head) body

(** Pattern equivalence of two TRC queries. *)
let same_pattern ?(abstraction : abstraction = `Literal) q1 q2 =
  canonical_string abstraction q1 = canonical_string abstraction q2

(** Pattern complexity: a scalar summary (variables, predicates, negation
    depth) used as the x-axis of the E6 bench. *)
type complexity = {
  variables : int;
  predicates : int;
  negation_depth : int;
  panel_hint : bool;  (** body contains disjunction *)
}

let complexity (q : T.query) : complexity =
  match TS.of_query q with
  | lvl ->
    let rec count (l : TS.level) =
      let vs = List.length l.TS.ranges
      and ps = List.length l.TS.preds in
      List.fold_left
        (fun (v, p, d) sub ->
          let v', p', d' = count sub in
          (v + v', p + p', max d (d' + 1)))
        (vs, ps, 0) l.TS.negs
    in
    let v, p, d = count lvl in
    { variables = v; predicates = p; negation_depth = d; panel_hint = false }
  | exception TS.Disjunction _ ->
    { variables = 0; predicates = 0; negation_depth = 0; panel_hint = true }
