(** Datalog → DRC by rule unfolding.

    Because the program is non-recursive, every IDB predicate can be
    expanded into a first-order formula over EDB predicates: a predicate
    with rules [p(x̄) :- B₁ | … | Bₙ] denotes [⋁ᵢ ∃ȳᵢ Bᵢ′], where the body
    variables not in the head are existentially closed and head variables
    are substituted by the call's argument terms.  The result feeds
    {!Diagres_rc.Drc_to_ra} to complete Datalog → RA. *)

module F = Diagres_logic.Fol

exception Unfold_error of string

let term_to_fol mapping = function
  | Ast.Const c -> F.Const c
  | Ast.Var x -> (
    match List.assoc_opt x mapping with
    | Some t -> t
    | None -> F.Var x)

(* Unfold one atom under a substitution [mapping : rule var → FOL term]. *)
let rec unfold_atom (p : Ast.program) idb supply mapping (a : Ast.atom) : F.t =
  let args = List.map (term_to_fol mapping) a.Ast.args in
  if not (List.mem a.Ast.pred idb) then F.Pred (a.Ast.pred, args)
  else begin
    let rules = Ast.rules_for p a.Ast.pred in
    if rules = [] then raise (Unfold_error ("no rules for " ^ a.Ast.pred));
    let disjuncts = List.map (fun r -> unfold_rule p idb supply args r) rules in
    F.disj disjuncts
  end

(* Unfold one rule applied to actual argument terms. *)
and unfold_rule p idb supply (args : F.term list) (r : Ast.rule) : F.t =
  (* fresh names for all rule variables, then unify head vars with args *)
  let rule_vars =
    List.sort_uniq String.compare
      (Ast.atom_vars r.Ast.head @ List.concat_map Ast.literal_vars r.Ast.body)
  in
  let fresh_of =
    List.map (fun v -> (v, Diagres_logic.Names.fresh supply (v ^ "_"))) rule_vars
  in
  (* head variable → actual argument; repeated head vars and constant head
     terms induce equalities *)
  let head_eqs = ref [] in
  let mapping = ref (List.map (fun (v, f) -> (v, F.Var f)) fresh_of) in
  List.iteri
    (fun i t ->
      let actual = List.nth args i in
      match t with
      | Ast.Var v ->
        (* substitute the fresh head variable by the actual term *)
        mapping :=
          List.map
            (fun (x, ft) -> if x = v then (x, actual) else (x, ft))
            !mapping
      | Ast.Const c ->
        head_eqs := F.Cmp (F.Eq, actual, F.Const c) :: !head_eqs)
    r.Ast.head.Ast.args;
  (* a head variable used at several positions equates all its actuals *)
  let per_var = Hashtbl.create 4 in
  List.iteri
    (fun i t ->
      match t with
      | Ast.Var v ->
        if not (Hashtbl.mem per_var v) then Hashtbl.add per_var v [];
        Hashtbl.replace per_var v (Hashtbl.find per_var v @ [ List.nth args i ])
      | Ast.Const _ -> ())
    r.Ast.head.Ast.args;
  let repeated_eqs =
    Hashtbl.fold
      (fun _ actuals acc ->
        match actuals with
        | first :: (_ :: _ as rest) ->
          List.map (fun other -> F.Cmp (F.Eq, first, other)) rest @ acc
        | _ -> acc)
      per_var []
  in
  let lits =
    List.map
      (fun lit ->
        match lit with
        | Ast.Pos a -> unfold_atom p idb supply !mapping a
        | Ast.Neg a -> F.Not (unfold_atom p idb supply !mapping a)
        | Ast.Cond (op, x, y) ->
          F.Cmp (op, term_to_fol !mapping x, term_to_fol !mapping y))
      r.Ast.body
  in
  let body = F.conj (!head_eqs @ repeated_eqs @ lits) in
  (* existentially close body-only variables (their fresh names) *)
  let head_vars = Ast.atom_vars r.Ast.head in
  let to_close =
    List.filter_map
      (fun (v, f) -> if List.mem v head_vars then None else Some f)
      fresh_of
  in
  F.exists_many to_close body

(** DRC query for goal predicate [goal] with head variables named after the
    goal's first rule when possible. *)
let query schemas (p : Ast.program) ~goal : Diagres_rc.Drc.query =
  ignore (Check.check_program schemas p);
  let idb = Ast.idb_preds p in
  if not (List.mem goal idb) then
    raise (Unfold_error ("goal is not an IDB predicate: " ^ goal));
  let arity =
    match Ast.rules_for p goal with
    | r :: _ -> List.length r.Ast.head.Ast.args
    | [] -> raise (Unfold_error ("no rules for goal " ^ goal))
  in
  let supply = Diagres_logic.Names.create () in
  (* name answer variables after the first rule's head variables *)
  let head_names =
    match Ast.rules_for p goal with
    | { Ast.head = { Ast.args; _ }; _ } :: _ ->
      List.mapi
        (fun i t ->
          match t with
          | Ast.Var v -> Diagres_logic.Names.fresh supply (String.lowercase_ascii v ^ "_ans_")
          | Ast.Const _ -> Diagres_logic.Names.fresh supply (Printf.sprintf "a%d_" (i + 1)))
        args
    | [] -> List.init arity (fun i -> Printf.sprintf "a%d" (i + 1))
  in
  let body =
    unfold_atom p idb supply []
      { Ast.pred = goal; args = List.map (fun v -> Ast.Var v) head_names }
  in
  { Diagres_rc.Drc.head = head_names; body }

(** Datalog → RA, composing with the calculus translation. *)
let to_ra schemas p ~goal =
  Diagres_rc.Drc_to_ra.query schemas (query schemas p ~goal)
