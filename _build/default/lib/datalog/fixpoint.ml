(** Recursive Datalog with stratified negation — the extension beyond the
    tutorial's non-recursive scope (its reference [3], QBD*, is exactly "a
    graphical query language with recursion").

    Evaluation is the classic stratified fixpoint: predicates are grouped
    into strongly connected components of the dependency graph; components
    are processed in topological order; within a component, rules iterate
    naively to a fixpoint (set semantics makes each round monotone, so
    termination is by the finite Herbrand base).  Negation must point to a
    strictly lower component — checked, not assumed. *)

module D = Diagres_data

exception Fixpoint_error of string

let error fmt = Format.kasprintf (fun s -> raise (Fixpoint_error s)) fmt

(* ---------------- dependency SCCs (Tarjan) ---------------- *)

let sccs (nodes : string list) (edges : (string * string) list) :
    string list list =
  let index = Hashtbl.create 16 in
  let lowlink = Hashtbl.create 16 in
  let on_stack = Hashtbl.create 16 in
  let stack = ref [] in
  let counter = ref 0 in
  let out = ref [] in
  let succs n = List.filter_map (fun (a, b) -> if a = n then Some b else None) edges in
  let rec strongconnect v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace lowlink v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v true;
    List.iter
      (fun w ->
        if List.mem w nodes then
          if not (Hashtbl.mem index w) then begin
            strongconnect w;
            Hashtbl.replace lowlink v
              (min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
          end
          else if Hashtbl.find_opt on_stack w = Some true then
            Hashtbl.replace lowlink v
              (min (Hashtbl.find lowlink v) (Hashtbl.find index w)))
      (succs v);
    if Hashtbl.find lowlink v = Hashtbl.find index v then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
          stack := rest;
          Hashtbl.replace on_stack w false;
          if w = v then w :: acc else pop (w :: acc)
      in
      out := pop [] :: !out
    end
  in
  List.iter (fun n -> if not (Hashtbl.mem index n) then strongconnect n) nodes;
  (* Tarjan emits SCCs in reverse topological order *)
  List.rev !out

(* ---------------- stratification check ---------------- *)

(** Negation must not occur inside a recursive component: for every rule
    [h :- …, not p, …], [p] must be in a strictly earlier component. *)
let check_stratified (p : Ast.program) (components : string list list) =
  let comp_of = Hashtbl.create 16 in
  List.iteri
    (fun i comp -> List.iter (fun n -> Hashtbl.replace comp_of n i) comp)
    components;
  List.iter
    (fun (r : Ast.rule) ->
      let hc = Hashtbl.find_opt comp_of r.Ast.head.Ast.pred in
      List.iter
        (function
          | Ast.Neg a -> (
            match (hc, Hashtbl.find_opt comp_of a.Ast.pred) with
            | Some h, Some b when b >= h ->
              error
                "program is not stratified: %S is negated inside its own \
                 recursive component (rule %s)"
                a.Ast.pred (Ast.rule_to_string r)
            | _ -> ())
          | _ -> ())
        r.Ast.body)
    p

(* ---------------- fixpoint evaluation ---------------- *)

(* one round of all rules for the predicates in [comp], against the current
   store; reuses the non-recursive engine's rule evaluator semantics *)
let eval_rules_once (store : D.Database.t) (p : Ast.program) (comp : string list) :
    (string * D.Tuple.t list) list =
  List.map
    (fun pred ->
      let rows =
        List.concat_map
          (fun r ->
            (* delegate single-rule evaluation to the shared engine by
               wrapping the rule as a one-rule program over the store *)
            Eval.eval_rule_tuples store r)
          (Ast.rules_for p pred)
      in
      (pred, rows))
    comp

let eval_program (db : D.Database.t) (p : Ast.program) : D.Database.t =
  let schemas =
    List.map (fun (n, r) -> (n, D.Relation.schema r)) (D.Database.relations db)
  in
  (* arity + safety checks are shared with the non-recursive engine; the
     non-recursion check is deliberately skipped *)
  let arities = Check.check_arities schemas p in
  Check.check_safety p;
  let idb = Ast.idb_preds p in
  let edges =
    List.filter_map
      (fun (a, b, _) -> if List.mem b idb then Some (a, b) else None)
      (Check.edges p)
  in
  let components = sccs idb edges in
  check_stratified p components;
  let schema_for pred =
    let arity = List.assoc pred arities in
    List.init arity (fun i -> D.Schema.attr ~ty:D.Value.Tany (Printf.sprintf "x%d" (i + 1)))
  in
  List.fold_left
    (fun store comp ->
      (* seed the component's predicates as empty *)
      let store =
        List.fold_left
          (fun st pred ->
            D.Database.add pred (D.Relation.empty (schema_for pred)) st)
          store comp
      in
      let rec iterate store round =
        if round > 10_000 then error "fixpoint did not converge";
        let updates = eval_rules_once store p comp in
        let store', changed =
          List.fold_left
            (fun (st, ch) (pred, rows) ->
              let old = D.Database.find pred st in
              let merged =
                List.fold_left (fun r t -> D.Relation.add t r) old rows
              in
              ( D.Database.add pred merged st,
                ch || D.Relation.cardinality merged > D.Relation.cardinality old ))
            (store, false) updates
        in
        if changed then iterate store' (round + 1) else store'
      in
      iterate store 0)
    db components

let query db p ~goal =
  let store = eval_program db p in
  match D.Database.find_opt goal store with
  | Some r -> r
  | None -> error "goal predicate not defined: %s" goal
