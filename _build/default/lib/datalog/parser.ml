(** Parser for Datalog programs:

    {v
    q1(S) :- reserves(S, B, D), boat(B, N, 'red').
    q2(S) :- sailor(S, N, R, A), not q1(S).
    v}

    Comments run from [--] to end of line.  Predicates are relation names
    (matched case-insensitively against the database catalog by the
    checker); [not] marks negative literals; comparisons are conditions. *)

module S = Diagres_parsekit.Stream
module L = Diagres_parsekit.Lexer

exception Parse_error = S.Parse_error

let keywords = [ "not" ]

let term s : Ast.term =
  match S.peek s with
  | L.Ident x when not (List.mem x keywords) ->
    S.advance s;
    Ast.Var x
  | _ -> Ast.Const (S.value s)

let atom s : Ast.atom =
  let pred = S.ident_not s keywords in
  S.expect_sym s "(";
  let args = S.sep_list1 s ~sep:"," term in
  S.expect_sym s ")";
  { Ast.pred; args }

let literal s : Ast.literal =
  if S.eat_kw s "not" then Ast.Neg (atom s)
  else
    match (S.peek s, S.peek2 s) with
    | L.Ident x, L.Sym "(" when not (List.mem x keywords) ->
      ignore x;
      Ast.Pos (atom s)
    | _ -> (
      let a = term s in
      match S.cmp_op s with
      | Some op -> Ast.Cond (op, a, term s)
      | None -> S.error s "expected comparison in condition literal")

let rule s : Ast.rule =
  let head = atom s in
  S.expect_sym s ":-";
  let body = S.sep_list1 s ~sep:"," literal in
  S.expect_sym s ".";
  { Ast.head; body }

let parse src : Ast.program =
  let s = S.make src in
  let rec go acc = if S.at_eof s then List.rev acc else go (rule s :: acc) in
  go []
