(** Non-recursive Datalog with (stratified) negation — the tutorial's fifth
    textual language, and the one whose "dataflow, one step at a time" style
    QBE secretly mirrors for division queries.

    A program is a list of rules; extensional predicates (EDB) are the
    database relations, intensional ones (IDB) are defined by rule heads. *)

type term = Var of string | Const of Diagres_data.Value.t

type atom = { pred : string; args : term list }

type literal =
  | Pos of atom                  (** [r(X, Y)] *)
  | Neg of atom                  (** [not r(X, Y)] *)
  | Cond of Diagres_logic.Fol.cmp * term * term  (** [X < Y], [X = 'red'] *)

type rule = { head : atom; body : literal list }

type program = rule list

let atom pred args = { pred; args }
let var x = Var x
let cst v = Const v

let term_vars = function Var x -> [ x ] | Const _ -> []
let atom_vars a = List.concat_map term_vars a.args

let literal_vars = function
  | Pos a | Neg a -> atom_vars a
  | Cond (_, x, y) -> term_vars x @ term_vars y

let head_preds (p : program) =
  List.sort_uniq String.compare (List.map (fun r -> r.head.pred) p)

(** IDB = predicates defined by some rule; everything else referenced is
    EDB. *)
let idb_preds = head_preds

let body_preds (r : rule) =
  List.filter_map
    (function Pos a | Neg a -> Some a.pred | Cond _ -> None)
    r.body

let rules_for (p : program) pred =
  List.filter (fun r -> r.head.pred = pred) p

(** Term/atom/literal/rule pretty-printing in the usual syntax. *)
let term_to_string = function
  | Var x -> x
  | Const c -> Diagres_data.Value.to_literal c

let atom_to_string a =
  Printf.sprintf "%s(%s)" a.pred
    (String.concat ", " (List.map term_to_string a.args))

let literal_to_string = function
  | Pos a -> atom_to_string a
  | Neg a -> "not " ^ atom_to_string a
  | Cond (op, x, y) ->
    Printf.sprintf "%s %s %s" (term_to_string x)
      (Diagres_logic.Fol.cmp_name op) (term_to_string y)

let rule_to_string r =
  Printf.sprintf "%s :- %s." (atom_to_string r.head)
    (String.concat ", " (List.map literal_to_string r.body))

let to_string (p : program) =
  String.concat "\n" (List.map rule_to_string p)

let pp ppf p = Fmt.string ppf (to_string p)

(** Number of rules and of repeated-relation occurrences: the statistics the
    E5 bench reports for the QBE-vs-Datalog comparison. *)
let stats (p : program) =
  let occurrences =
    List.concat_map (fun r -> body_preds r) p
  in
  let repeats =
    List.length occurrences - List.length (List.sort_uniq String.compare occurrences)
  in
  (List.length p, List.length occurrences, repeats)
