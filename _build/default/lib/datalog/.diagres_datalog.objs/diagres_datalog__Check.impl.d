lib/datalog/check.ml: Ast Diagres_data Format Hashtbl List String
