lib/datalog/fixpoint.ml: Ast Check Diagres_data Eval Format Hashtbl List Printf
