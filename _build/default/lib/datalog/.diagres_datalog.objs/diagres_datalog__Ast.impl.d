lib/datalog/ast.ml: Diagres_data Diagres_logic Fmt List Printf String
