lib/datalog/to_drc.ml: Ast Check Diagres_logic Diagres_rc Hashtbl List Printf String
