lib/datalog/parser.ml: Ast Diagres_parsekit List
