lib/datalog/eval.ml: Ast Check Diagres_data Diagres_logic List Printf
