(** Plane geometry for diagram layout. *)

type point = { x : float; y : float }

type rect = { rx : float; ry : float; w : float; h : float }

let pt x y = { x; y }
let rect rx ry w h = { rx; ry; w; h }

let center r = pt (r.rx +. (r.w /. 2.)) (r.ry +. (r.h /. 2.))
let right r = r.rx +. r.w
let bottom r = r.ry +. r.h

let translate_rect dx dy r = { r with rx = r.rx +. dx; ry = r.ry +. dy }

let contains r p =
  p.x >= r.rx && p.x <= right r && p.y >= r.ry && p.y <= bottom r

let inset d r =
  { rx = r.rx +. d; ry = r.ry +. d; w = r.w -. (2. *. d); h = r.h -. (2. *. d) }

(** Smallest rect covering all inputs (origin rect for the empty list). *)
let bounding = function
  | [] -> rect 0. 0. 0. 0.
  | r :: rs ->
    let x0 = List.fold_left (fun a q -> min a q.rx) r.rx rs in
    let y0 = List.fold_left (fun a q -> min a q.ry) r.ry rs in
    let x1 = List.fold_left (fun a q -> max a (right q)) (right r) rs in
    let y1 = List.fold_left (fun a q -> max a (bottom q)) (bottom r) rs in
    rect x0 y0 (x1 -. x0) (y1 -. y0)

(** Point where the segment from [center r] towards [target] crosses the
    rectangle border — where edges attach to node boxes. *)
let border_point r target =
  let c = center r in
  let dx = target.x -. c.x and dy = target.y -. c.y in
  if dx = 0. && dy = 0. then c
  else begin
    let hw = r.w /. 2. and hh = r.h /. 2. in
    let tx = if dx = 0. then infinity else hw /. Float.abs dx in
    let ty = if dy = 0. then infinity else hh /. Float.abs dy in
    let t = Float.min tx ty in
    pt (c.x +. (dx *. t)) (c.y +. (dy *. t))
  end

(** Rough text extent for a monospace-ish font: the layout engine needs
    conservative label sizes without a font library. *)
let text_width ?(font_size = 12.) s =
  float_of_int (String.length s) *. font_size *. 0.62

let text_height ?(font_size = 12.) () = font_size *. 1.3
