(** SVG emission: a tiny retained scene of primitive shapes serialized to a
    standalone SVG document.  No external renderer is needed — the tutorial
    artifacts are static figures. *)

type style = {
  stroke : string;
  stroke_width : float;
  fill : string;
  dashed : bool;
  opacity : float;
}

let default_style =
  { stroke = "#222222"; stroke_width = 1.2; fill = "none"; dashed = false;
    opacity = 1.0 }

let filled color = { default_style with fill = color; stroke = "none" }

type shape =
  | Rect of Geom.rect * float * style  (** rounded corner radius *)
  | Circle of Geom.point * float * style
  | Ellipse of Geom.point * float * float * style
  | Line of Geom.point * Geom.point * style
  | Polyline of Geom.point list * bool * style  (** arrowhead at end? *)
  | Text of Geom.point * string * float * string * bool
      (** anchor point, content, font size, color, bold *)
  | Group of string * shape list  (** labelled group, for debuggability *)

type t = { mutable shapes : shape list }

let create () = { shapes = [] }
let add scene shape = scene.shapes <- shape :: scene.shapes

let rect ?(style = default_style) ?(radius = 6.) scene r =
  add scene (Rect (r, radius, style))

let circle ?(style = default_style) scene c radius =
  add scene (Circle (c, radius, style))

let ellipse ?(style = default_style) scene c radx rady =
  add scene (Ellipse (c, radx, rady, style))

let line ?(style = default_style) scene a b = add scene (Line (a, b, style))

let polyline ?(style = default_style) ?(arrow = false) scene pts =
  add scene (Polyline (pts, arrow, style))

let text ?(size = 12.) ?(color = "#111111") ?(bold = false) scene p s =
  add scene (Text (p, s, size, color, bold))

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let f = Printf.sprintf "%.1f"

let style_attrs st =
  Printf.sprintf
    "stroke=\"%s\" stroke-width=\"%s\" fill=\"%s\"%s%s" st.stroke
    (f st.stroke_width) st.fill
    (if st.dashed then " stroke-dasharray=\"5,4\"" else "")
    (if st.opacity < 1.0 then Printf.sprintf " opacity=\"%s\"" (f st.opacity)
     else "")

let rec shape_to_svg buf = function
  | Rect (r, radius, st) ->
    Buffer.add_string buf
      (Printf.sprintf
         "<rect x=\"%s\" y=\"%s\" width=\"%s\" height=\"%s\" rx=\"%s\" %s/>\n"
         (f r.Geom.rx) (f r.Geom.ry) (f r.Geom.w) (f r.Geom.h) (f radius)
         (style_attrs st))
  | Circle (c, radius, st) ->
    Buffer.add_string buf
      (Printf.sprintf "<circle cx=\"%s\" cy=\"%s\" r=\"%s\" %s/>\n"
         (f c.Geom.x) (f c.Geom.y) (f radius) (style_attrs st))
  | Ellipse (c, radx, rady, st) ->
    Buffer.add_string buf
      (Printf.sprintf
         "<ellipse cx=\"%s\" cy=\"%s\" rx=\"%s\" ry=\"%s\" %s/>\n"
         (f c.Geom.x) (f c.Geom.y) (f radx) (f rady) (style_attrs st))
  | Line (a, b, st) ->
    Buffer.add_string buf
      (Printf.sprintf
         "<line x1=\"%s\" y1=\"%s\" x2=\"%s\" y2=\"%s\" %s/>\n"
         (f a.Geom.x) (f a.Geom.y) (f b.Geom.x) (f b.Geom.y) (style_attrs st))
  | Polyline (pts, arrow, st) ->
    let points =
      String.concat " "
        (List.map (fun p -> Printf.sprintf "%s,%s" (f p.Geom.x) (f p.Geom.y)) pts)
    in
    Buffer.add_string buf
      (Printf.sprintf "<polyline points=\"%s\" %s%s/>\n" points
         (style_attrs st)
         (if arrow then " marker-end=\"url(#arrow)\"" else ""))
  | Text (p, s, size, color, bold) ->
    Buffer.add_string buf
      (Printf.sprintf
         "<text x=\"%s\" y=\"%s\" font-size=\"%s\" font-family=\"Menlo, \
          monospace\" fill=\"%s\"%s>%s</text>\n"
         (f p.Geom.x) (f p.Geom.y) (f size) color
         (if bold then " font-weight=\"bold\"" else "")
         (escape s))
  | Group (label, shapes) ->
    Buffer.add_string buf
      (Printf.sprintf "<g data-label=\"%s\">\n" (escape label));
    List.iter (shape_to_svg buf) shapes;
    Buffer.add_string buf "</g>\n"

(** Serialize the scene; the viewBox is computed from a given size. *)
let to_string ?(width = 800.) ?(height = 600.) scene =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf
       "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%s\" \
        height=\"%s\" viewBox=\"0 0 %s %s\">\n"
       (f width) (f height) (f width) (f height));
  Buffer.add_string buf
    "<defs><marker id=\"arrow\" viewBox=\"0 0 10 10\" refX=\"9\" \
     refY=\"5\" markerWidth=\"7\" markerHeight=\"7\" \
     orient=\"auto-start-reverse\"><path d=\"M 0 0 L 10 5 L 0 10 z\" \
     fill=\"#222222\"/></marker></defs>\n";
  Buffer.add_string buf
    (Printf.sprintf
       "<rect x=\"0\" y=\"0\" width=\"%s\" height=\"%s\" fill=\"white\"/>\n"
       (f width) (f height));
  List.iter (shape_to_svg buf) (List.rev scene.shapes);
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf

let save ?width ?height scene path =
  let oc = open_out path in
  output_string oc (to_string ?width ?height scene);
  close_out oc
