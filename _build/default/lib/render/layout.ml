(** Layered DAG layout ("stratisfimal-lite") for node-link diagrams.

    Nodes are assigned to layers by longest path from the sources, ordered
    within each layer by a couple of barycenter sweeps, and given
    coordinates on a fixed grid.  This is a deliberately small instance of
    the layered layout family the QueryVis system uses (STRATISFIMAL
    LAYOUT [6]); optimality is not the point — determinism and absence of
    overlap are. *)

type node = { id : int; label : string; width : float; height : float }

type edge = { src : int; dst : int }

type placed = { node : node; rect : Geom.rect; layer : int }

type result = {
  nodes : placed list;
  size : float * float;  (** canvas width, height *)
}

let find_placed result id =
  List.find (fun p -> p.node.id = id) result.nodes

(* Longest-path layering: sources at layer 0. *)
let layers nodes edges =
  let memo = Hashtbl.create 16 in
  let preds n = List.filter (fun e -> e.dst = n) edges in
  let rec layer_of visited n =
    if List.mem n visited then
      invalid_arg "Layout.layered: graph has a cycle"
    else
      match Hashtbl.find_opt memo n with
      | Some l -> l
      | None ->
        let l =
          match preds n with
          | [] -> 0
          | ps ->
            1
            + List.fold_left
                (fun acc e -> max acc (layer_of (n :: visited) e.src))
                0 ps
        in
        Hashtbl.replace memo n l;
        l
  in
  List.map (fun nd -> (nd.id, layer_of [] nd.id)) nodes

(* Barycenter ordering within layers: two top-down/bottom-up sweeps. *)
let order_layers nodes edges node_layers =
  let max_layer = List.fold_left (fun a (_, l) -> max a l) 0 node_layers in
  let layer_nodes l =
    List.filter (fun nd -> List.assoc nd.id node_layers = l) nodes
  in
  let orders = Array.make (max_layer + 1) [||] in
  for l = 0 to max_layer do
    orders.(l) <- Array.of_list (List.map (fun nd -> nd.id) (layer_nodes l))
  done;
  let position l id =
    let arr = orders.(l) in
    let rec go i = if arr.(i) = id then i else go (i + 1) in
    float_of_int (go 0)
  in
  let barycenter neighbors l id =
    let ns = neighbors id in
    if ns = [] then position l id
    else
      List.fold_left ( +. ) 0.
        (List.map
           (fun (n, nl) -> position nl n)
           ns)
      /. float_of_int (List.length ns)
  in
  let sweep ~down =
    let range =
      if down then List.init max_layer (fun i -> i + 1)
      else List.rev (List.init max_layer (fun i -> i))
    in
    List.iter
      (fun l ->
        let neighbors id =
          List.filter_map
            (fun e ->
              if down && e.dst = id then
                Some (e.src, List.assoc e.src node_layers)
              else if (not down) && e.src = id then
                Some (e.dst, List.assoc e.dst node_layers)
              else None)
            edges
        in
        let arr = orders.(l) in
        let keyed =
          Array.map (fun id -> (barycenter neighbors l id, id)) arr
        in
        Array.sort compare keyed;
        orders.(l) <- Array.map snd keyed)
      range
  in
  sweep ~down:true;
  sweep ~down:false;
  sweep ~down:true;
  orders

(** Lay out a DAG top-to-bottom.  [hgap]/[vgap] are the minimum distances
    between node borders. *)
let layered ?(hgap = 30.) ?(vgap = 40.) (nodes : node list) (edges : edge list)
    : result =
  if nodes = [] then { nodes = []; size = (10., 10.) }
  else begin
    let node_layers = layers nodes edges in
    let orders = order_layers nodes edges node_layers in
    let node_of id = List.find (fun nd -> nd.id = id) nodes in
    let max_layer = Array.length orders - 1 in
    (* row heights *)
    let row_height l =
      Array.fold_left (fun a id -> Float.max a (node_of id).height) 0. orders.(l)
    in
    let placed = ref [] in
    let y = ref vgap in
    for l = 0 to max_layer do
      let x = ref hgap in
      Array.iter
        (fun id ->
          let nd = node_of id in
          placed :=
            { node = nd; rect = Geom.rect !x !y nd.width nd.height; layer = l }
            :: !placed;
          x := !x +. nd.width +. hgap)
        orders.(l);
      y := !y +. row_height l +. vgap
    done;
    (* center each layer horizontally *)
    let total_width =
      List.fold_left
        (fun a p -> Float.max a (Geom.right p.rect))
        0. !placed
      +. hgap
    in
    let placed =
      List.map
        (fun p ->
          let row =
            List.filter (fun q -> q.layer = p.layer) !placed
          in
          let row_w =
            List.fold_left (fun a q -> Float.max a (Geom.right q.rect)) 0. row
          in
          let dx = (total_width -. hgap -. row_w) /. 2. in
          { p with rect = Geom.translate_rect dx 0. p.rect })
        !placed
    in
    { nodes = placed; size = (total_width, !y) }
  end
