lib/render/ascii.ml: Buffer Bytes String
