lib/render/layout.ml: Array Float Geom Hashtbl List
