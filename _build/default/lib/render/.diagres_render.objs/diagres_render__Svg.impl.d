lib/render/svg.ml: Buffer Geom List Printf String
