lib/render/geom.ml: Float List String
