(** Monospace character canvas: the terminal renderer for every diagram.

    Coordinates are (column, row) with the origin at the top left.  Drawing
    clips silently at the canvas border; box-drawing uses ASCII so output
    survives any terminal. *)

type t = { width : int; height : int; cells : Bytes.t }

let create width height =
  { width; height; cells = Bytes.make (width * height) ' ' }

let set canvas x y c =
  if x >= 0 && x < canvas.width && y >= 0 && y < canvas.height then
    Bytes.set canvas.cells ((y * canvas.width) + x) c

let get canvas x y =
  if x >= 0 && x < canvas.width && y >= 0 && y < canvas.height then
    Bytes.get canvas.cells ((y * canvas.width) + x)
  else ' '

let text canvas x y s = String.iteri (fun i c -> set canvas (x + i) y c) s

let hline canvas x0 x1 y =
  for x = min x0 x1 to max x0 x1 do
    let c = get canvas x y in
    set canvas x y (if c = '|' || c = '+' then '+' else '-')
  done

let vline canvas x y0 y1 =
  for y = min y0 y1 to max y0 y1 do
    let c = get canvas x y in
    set canvas x y (if c = '-' || c = '+' then '+' else '|')
  done

(** Box with corners; [dashed] renders the border with dots (our ASCII
    convention for negated boxes/cuts). *)
let box ?(dashed = false) canvas x y w h =
  if w >= 2 && h >= 2 then begin
    let hchar = if dashed then '.' else '-' in
    let vchar = if dashed then ':' else '|' in
    for i = x + 1 to x + w - 2 do
      set canvas i y hchar;
      set canvas i (y + h - 1) hchar
    done;
    for j = y + 1 to y + h - 2 do
      set canvas x j vchar;
      set canvas (x + w - 1) j vchar
    done;
    set canvas x y '+';
    set canvas (x + w - 1) y '+';
    set canvas x (y + h - 1) '+';
    set canvas (x + w - 1) (y + h - 1) '+'
  end

(** Straight connector between two points: an L-shaped route (horizontal
    then vertical), with an optional arrowhead at the destination. *)
let connect ?(arrow = false) canvas (x0, y0) (x1, y1) =
  hline canvas x0 x1 y0;
  vline canvas x1 (min y0 y1) (max y0 y1);
  if arrow then
    set canvas x1 y1 (if y1 > y0 then 'v' else if y1 < y0 then '^'
                      else if x1 > x0 then '>' else '<')

let to_string canvas =
  let buf = Buffer.create ((canvas.width + 1) * canvas.height) in
  for y = 0 to canvas.height - 1 do
    (* trim trailing blanks per line *)
    let last = ref (-1) in
    for x = 0 to canvas.width - 1 do
      if get canvas x y <> ' ' then last := x
    done;
    for x = 0 to !last do
      Buffer.add_char buf (get canvas x y)
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf
