(** Relation schemas in the named perspective.

    A schema is an ordered list of distinctly-named, typed attributes.  The
    named perspective (rather than positional) is what the tutorial's RA and
    TRC notation uses, and what makes diagrams labelable. *)

type attribute = { name : string; ty : Value.ty }

type t = attribute list

exception Schema_error of string

let error fmt = Format.kasprintf (fun s -> raise (Schema_error s)) fmt

let attr ?(ty = Value.Tint) name = { name; ty }

let make pairs = List.map (fun (name, ty) -> { name; ty }) pairs

let names (s : t) = List.map (fun a -> a.name) s

let arity = List.length

let mem name (s : t) = List.exists (fun a -> a.name = name) s

let find_opt name (s : t) = List.find_opt (fun a -> a.name = name) s

(** Position of attribute [name], used to index into tuples. *)
let index name (s : t) =
  let rec go i = function
    | [] -> error "unknown attribute %S (schema: %s)" name
              (String.concat ", " (names s))
    | a :: _ when a.name = name -> i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 s

let index_opt name (s : t) =
  let rec go i = function
    | [] -> None
    | a :: _ when (a : attribute).name = name -> Some i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 s

let check_distinct (s : t) =
  let rec go seen = function
    | [] -> ()
    | a :: rest ->
      if List.mem a.name seen then error "duplicate attribute %S" a.name
      else go (a.name :: seen) rest
  in
  go [] s

(** Schema equality up to attribute order and names: used for set-compatible
    checks in UNION/INTERSECT/EXCEPT which the tutorial treats positionally. *)
(* Set-operation compatibility is positional and untyped (types join to
   [Tany]): calculus-level constructions such as the active domain
   legitimately mix value types in one column. *)
let compatible (a : t) (b : t) = arity a = arity b

(** Positional type join for set operations over compatible schemas; keeps
    the left side's attribute names. *)
let join_types (a : t) (b : t) =
  List.map2 (fun x y -> { x with ty = Value.ty_join x.ty y.ty }) a b

let equal (a : t) (b : t) =
  arity a = arity b
  && List.for_all2 (fun x y -> x.name = y.name && x.ty = y.ty) a b

(** Concatenation for cartesian product; raises on name clashes, mirroring
    the RA requirement that × operands have disjoint attribute sets. *)
let concat_disjoint (a : t) (b : t) =
  List.iter
    (fun x -> if mem x.name a then error "attribute %S occurs on both sides of a product" x.name)
    b;
  a @ b

(** Qualified renaming [r.a] used when bringing a base table into scope under
    a tuple-variable alias. *)
let qualify alias (s : t) =
  List.map (fun a -> { a with name = alias ^ "." ^ a.name }) s

let project names (s : t) =
  List.map
    (fun n ->
      match find_opt n s with
      | Some a -> a
      | None -> error "cannot project on unknown attribute %S" n)
    names

let rename (from_ : string) (to_ : string) (s : t) =
  if not (mem from_ s) then error "cannot rename unknown attribute %S" from_;
  if mem to_ s then error "rename target %S already exists" to_;
  List.map (fun a -> if a.name = from_ then { a with name = to_ } else a) s

let common (a : t) (b : t) =
  List.filter (fun x -> mem x.name b) a

let pp ppf (s : t) =
  Fmt.pf ppf "(%a)"
    (Fmt.list ~sep:(Fmt.any ", ") (fun ppf a ->
         Fmt.pf ppf "%s:%s" a.name (Value.ty_name a.ty)))
    s

let to_string s = Fmt.str "%a" pp s
