(** The sailors–reserves–boats instance used throughout the tutorial,
    following Ramakrishnan & Gehrke ("cow book") chapter 5, extended with a
    green boat so that the disjunction query Q4 is non-trivial. *)

let i n = Value.Int n
let s x = Value.String x
let f x = Value.Float x

let sailor_schema =
  Schema.make
    [ ("sid", Value.Tint); ("sname", Value.Tstring); ("rating", Value.Tint);
      ("age", Value.Tfloat) ]

let boat_schema =
  Schema.make
    [ ("bid", Value.Tint); ("bname", Value.Tstring); ("color", Value.Tstring) ]

let reserves_schema =
  Schema.make
    [ ("sid", Value.Tint); ("bid", Value.Tint); ("day", Value.Tstring) ]

let sailors =
  Relation.of_lists sailor_schema
    [ [ i 22; s "Dustin"; i 7; f 45.0 ];
      [ i 29; s "Brutus"; i 1; f 33.0 ];
      [ i 31; s "Lubber"; i 8; f 55.5 ];
      [ i 32; s "Andy"; i 8; f 25.5 ];
      [ i 58; s "Rusty"; i 10; f 35.0 ];
      [ i 64; s "Horatio"; i 7; f 35.0 ];
      [ i 71; s "Zorba"; i 10; f 16.0 ];
      [ i 74; s "Horatio"; i 9; f 35.0 ];
      [ i 85; s "Art"; i 3; f 25.5 ];
      [ i 95; s "Bob"; i 3; f 63.5 ] ]

let boats =
  Relation.of_lists boat_schema
    [ [ i 101; s "Interlake"; s "blue" ];
      [ i 102; s "Interlake"; s "red" ];
      [ i 103; s "Clipper"; s "green" ];
      [ i 104; s "Marine"; s "red" ] ]

let reserves =
  Relation.of_lists reserves_schema
    [ [ i 22; i 101; s "10/10" ];
      [ i 22; i 102; s "10/10" ];
      [ i 22; i 103; s "10/8" ];
      [ i 22; i 104; s "10/7" ];
      [ i 31; i 102; s "11/10" ];
      [ i 31; i 103; s "11/6" ];
      [ i 31; i 104; s "11/12" ];
      [ i 64; i 101; s "9/5" ];
      [ i 64; i 102; s "9/8" ];
      [ i 74; i 103; s "9/8" ];
      [ i 95; i 104; s "9/9" ] ]

let db =
  Database.of_list
    [ ("Sailor", sailors); ("Boat", boats); ("Reserves", reserves) ]

(** The schemas alone (for typechecking queries without an instance). *)
let schemas =
  [ ("Sailor", sailor_schema); ("Boat", boat_schema);
    ("Reserves", reserves_schema) ]

(* Expected answers on [db], used as ground truth in tests.

   Q1 sailors (sid) who reserved a red boat: 22, 31, 64, 95.
   Q2 sailors who reserved no red boat: 29, 32, 58, 71, 74, 85.
   Q3 sailors who reserved all red boats (bids 102 and 104): 22, 31.
   Q4 sailors who reserved a red or a green boat: 22, 31, 64, 74, 95. *)
let q1_expected_sids = [ 22; 31; 64; 95 ]
let q2_expected_sids = [ 29; 32; 58; 71; 74; 85 ]
let q3_expected_sids = [ 22; 31 ]
let q4_expected_sids = [ 22; 31; 64; 74; 95 ]

let sid_relation sids =
  Relation.of_lists (Schema.make [ ("sid", Value.Tint) ])
    (List.map (fun x -> [ i x ]) sids)
