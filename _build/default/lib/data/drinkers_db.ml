(** The other classic teaching database: drinkers, bars, beers
    (Ullman's "Frequents / Serves / Likes").

    A second vocabulary keeps the toolkit honest — nothing may be
    hard-wired to sailors — and its classic queries are *more* nested than
    the sailors ones (e.g. "drinkers who frequent only bars that serve a
    beer they like" is a ∀∃ pattern over three relations). *)

let s x = Value.String x

let frequents_schema =
  Schema.make [ ("drinker", Value.Tstring); ("bar", Value.Tstring) ]

let serves_schema =
  Schema.make [ ("bar", Value.Tstring); ("beer", Value.Tstring) ]

let likes_schema =
  Schema.make [ ("drinker", Value.Tstring); ("beer", Value.Tstring) ]

let frequents =
  Relation.of_lists frequents_schema
    [ [ s "adam"; s "lou" ];
      [ s "adam"; s "eagle" ];
      [ s "bea"; s "lou" ];
      [ s "cal"; s "eagle" ];
      [ s "cal"; s "moes" ];
      [ s "dan"; s "moes" ] ]

let serves =
  Relation.of_lists serves_schema
    [ [ s "lou"; s "pils" ];
      [ s "lou"; s "stout" ];
      [ s "eagle"; s "stout" ];
      [ s "eagle"; s "ipa" ];
      [ s "moes"; s "lager" ] ]

let likes =
  Relation.of_lists likes_schema
    [ [ s "adam"; s "stout" ];
      [ s "bea"; s "pils" ];
      [ s "bea"; s "ipa" ];
      [ s "cal"; s "stout" ];
      [ s "dan"; s "pils" ] ]

let db =
  Database.of_list
    [ ("Frequents", frequents); ("Serves", serves); ("Likes", likes) ]

let schemas =
  [ ("Frequents", frequents_schema); ("Serves", serves_schema);
    ("Likes", likes_schema) ]

(* Ground truth, hand-checked:

   D1 "drinkers who frequent a bar serving a beer they like":
      adam (lou/eagle serve stout), bea (lou serves pils), cal (eagle
      serves stout).  dan frequents moes (lager) but likes pils → out.

   D2 "drinkers who frequent ONLY bars serving some beer they like":
      adam: lou ✓ (stout), eagle ✓ (stout) → in.
      bea: lou ✓ (pils) → in.
      cal: eagle ✓ (stout), moes ✗ (serves lager only) → out.
      dan: moes ✗ → out.

   D3 "drinkers who like some beer served nowhere": bea? pils@lou, ipa@eagle
      → no.  Nobody: every liked beer is served somewhere.  (stout, pils,
      ipa, lager all served.)  → empty. *)
let d1_expected = [ "adam"; "bea"; "cal" ]
let d2_expected = [ "adam"; "bea" ]
let d3_expected : string list = []

let drinker_relation names =
  Relation.of_lists
    (Schema.make [ ("drinker", Value.Tstring) ])
    (List.map (fun n -> [ s n ]) names)
