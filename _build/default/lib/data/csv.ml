(** Minimal CSV reader/writer for loading relation instances from disk.

    Supports quoted fields with embedded commas and doubled quotes — enough
    for the example workloads; not a general RFC 4180 implementation. *)

exception Csv_error of string

let parse_line line =
  let n = String.length line in
  let buf = Buffer.create 16 in
  let fields = ref [] in
  let flush () =
    fields := Buffer.contents buf :: !fields;
    Buffer.clear buf
  in
  let rec plain i =
    if i >= n then flush ()
    else
      match line.[i] with
      | ',' ->
        flush ();
        plain (i + 1)
      | '"' when Buffer.length buf = 0 -> quoted (i + 1)
      | c ->
        Buffer.add_char buf c;
        plain (i + 1)
  and quoted i =
    if i >= n then raise (Csv_error ("unterminated quote: " ^ line))
    else
      match line.[i] with
      | '"' when i + 1 < n && line.[i + 1] = '"' ->
        Buffer.add_char buf '"';
        quoted (i + 2)
      | '"' -> plain (i + 1)
      | c ->
        Buffer.add_char buf c;
        quoted (i + 1)
  in
  plain 0;
  List.rev !fields

let parse_string s =
  String.split_on_char '\n' s
  |> List.filter_map (fun line ->
         let line =
           if String.length line > 0 && line.[String.length line - 1] = '\r'
           then String.sub line 0 (String.length line - 1)
           else line
         in
         if String.trim line = "" then None else Some (parse_line line))

(** Read a relation whose first line is a header of attribute names; value
    types are inferred per column from the first data row. *)
let relation_of_string s =
  match parse_string s with
  | [] -> raise (Csv_error "empty csv")
  | header :: rows ->
    let parsed = List.map (List.map Value.of_string) rows in
    let col_ty i =
      match parsed with
      | [] -> Value.Tstring
      | row :: _ -> (
        match List.nth_opt row i with
        | Some v -> Value.type_of v
        | None -> Value.Tstring)
    in
    let schema = List.mapi (fun i name -> Schema.attr ~ty:(col_ty i) name) header in
    Relation.of_lists schema parsed

let load_relation path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  relation_of_string s

let escape_field s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let relation_to_string rel =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (String.concat "," (Schema.names (Relation.schema rel)));
  Buffer.add_char buf '\n';
  Relation.iter
    (fun t ->
      Buffer.add_string buf
        (String.concat ","
           (List.map (fun v -> escape_field (Value.to_string v)) (Tuple.to_list t)));
      Buffer.add_char buf '\n')
    rel;
  Buffer.contents buf

let save_relation path rel =
  let oc = open_out path in
  output_string oc (relation_to_string rel);
  close_out oc

(** Load every [*.csv] in a directory as a database; relation names are the
    file basenames ([Sailor.csv] → [Sailor]). *)
let load_database dir : Database.t =
  let entries = Sys.readdir dir in
  Array.sort compare entries;
  Array.fold_left
    (fun db entry ->
      if Filename.check_suffix entry ".csv" then
        Database.add
          (Filename.remove_extension entry)
          (load_relation (Filename.concat dir entry))
          db
      else db)
    Database.empty entries

(** Write every relation of a database as [<name>.csv] into [dir]. *)
let save_database dir (db : Database.t) =
  List.iter
    (fun (name, rel) ->
      save_relation (Filename.concat dir (name ^ ".csv")) rel)
    (Database.relations db)
