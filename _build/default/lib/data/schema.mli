(** Relation schemas in the named perspective: ordered lists of distinctly
    named, typed attributes. *)

type attribute = { name : string; ty : Value.ty }

type t = attribute list

exception Schema_error of string

(** Raise a located {!Schema_error} with a formatted message. *)
val error : ('a, Format.formatter, unit, 'b) format4 -> 'a

(** [attr ?ty name] builds one attribute (default type [Tint]). *)
val attr : ?ty:Value.ty -> string -> attribute

(** [make [(name, ty); …]] builds a schema in the given order. *)
val make : (string * Value.ty) list -> t

val names : t -> string list
val arity : t -> int
val mem : string -> t -> bool
val find_opt : string -> t -> attribute option

(** Position of an attribute; raises {!Schema_error} when absent. *)
val index : string -> t -> int

val index_opt : string -> t -> int option

(** Raise when two attributes share a name. *)
val check_distinct : t -> unit

(** Exact equality: same names and types in the same order. *)
val equal : t -> t -> bool

(** Set-operation compatibility: positional and untyped (arity equality);
    see the module comment in the implementation for why mixing types is
    allowed. *)
val compatible : t -> t -> bool

(** Positional type join for set operations; keeps the left side's names. *)
val join_types : t -> t -> t

(** Concatenation for ×; raises on shared attribute names. *)
val concat_disjoint : t -> t -> t

(** [qualify alias s] renames every attribute to [alias.name]. *)
val qualify : string -> t -> t

(** Sub-schema in the order given; raises on unknown names. *)
val project : string list -> t -> t

(** Rename one attribute; raises if the source is missing or the target
    already exists. *)
val rename : string -> string -> t -> t

(** Attributes present (by name) in both schemas, in left order. *)
val common : t -> t -> t

val pp : Format.formatter -> t -> unit
val to_string : t -> string
