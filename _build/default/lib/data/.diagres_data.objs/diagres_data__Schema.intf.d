lib/data/schema.mli: Format Value
