lib/data/tuple.ml: Array Fmt List Option Schema Stdlib Value
