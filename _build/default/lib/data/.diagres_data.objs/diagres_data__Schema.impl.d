lib/data/schema.ml: Fmt Format List String Value
