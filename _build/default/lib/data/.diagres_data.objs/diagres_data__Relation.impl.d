lib/data/relation.ml: Array Fmt Fun Hashtbl List Schema Set String Tuple Value
