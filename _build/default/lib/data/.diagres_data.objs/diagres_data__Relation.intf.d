lib/data/relation.mli: Format Schema Tuple Value
