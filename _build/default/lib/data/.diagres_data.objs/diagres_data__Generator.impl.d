lib/data/generator.ml: Database Int64 List Printf Relation Sample_db Schema Value
