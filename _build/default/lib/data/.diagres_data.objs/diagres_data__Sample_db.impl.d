lib/data/sample_db.ml: Database List Relation Schema Value
