lib/data/drinkers_db.ml: Database List Relation Schema Value
