lib/data/csv.ml: Array Buffer Database Filename List Relation Schema String Sys Tuple Value
