lib/data/database.ml: Fmt List Map Relation Schema String Value
