lib/data/database.mli: Format Relation Schema Value
