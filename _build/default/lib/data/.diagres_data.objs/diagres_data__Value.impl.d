lib/data/value.ml: Float Fmt Hashtbl Printf Stdlib String
