lib/data/tuple.mli: Format Schema Value
