(** Set-semantics relations: a schema plus a sorted set of tuples.

    The tutorial works throughout with set semantics (RA, RC, and Datalog are
    all set-based); the SQL front-end inserts explicit duplicate elimination.
    Tuple sets are represented with [Stdlib.Set] over [Tuple.compare], which
    keeps all RA operators purely functional. *)

module Tset = Set.Make (struct
  type t = Tuple.t

  let compare = Tuple.compare
end)

type t = { schema : Schema.t; tuples : Tset.t }

let schema r = r.schema
let cardinality r = Tset.cardinal r.tuples
let is_empty r = Tset.is_empty r.tuples
let tuples r = Tset.elements r.tuples
let mem tup r = Tset.mem tup r.tuples

let empty schema = { schema; tuples = Tset.empty }

let check_tuple schema tup =
  if Tuple.arity tup <> Schema.arity schema then
    Schema.error "tuple %s does not match schema %s" (Tuple.to_string tup)
      (Schema.to_string schema)

let add tup r =
  check_tuple r.schema tup;
  { r with tuples = Tset.add tup r.tuples }

let of_tuples schema tups =
  Schema.check_distinct schema;
  List.iter (check_tuple schema) tups;
  { schema; tuples = Tset.of_list tups }

(** Convenience constructor from value lists. *)
let of_lists schema rows = of_tuples schema (List.map Tuple.of_list rows)

let fold f r init = Tset.fold f r.tuples init
let iter f r = Tset.iter f r.tuples
let filter p r = { r with tuples = Tset.filter p r.tuples }
let for_all p r = Tset.for_all p r.tuples
let exists p r = Tset.exists p r.tuples

let map schema f r =
  { schema; tuples = Tset.fold (fun t acc -> Tset.add (f t) acc) r.tuples Tset.empty }

let equal a b =
  Schema.compatible a.schema b.schema && Tset.equal a.tuples b.tuples

(** Same set of rows irrespective of attribute names — how we compare results
    across query languages that name columns differently. *)
let same_rows a b = Tset.equal a.tuples b.tuples

let require_compatible op a b =
  if not (Schema.compatible a.schema b.schema) then
    Schema.error "%s: incompatible schemas %s vs %s" op
      (Schema.to_string a.schema) (Schema.to_string b.schema)

let union a b =
  require_compatible "union" a b;
  { schema = Schema.join_types a.schema b.schema;
    tuples = Tset.union a.tuples b.tuples }

let inter a b =
  require_compatible "intersect" a b;
  { a with tuples = Tset.inter a.tuples b.tuples }

let diff a b =
  require_compatible "except" a b;
  { a with tuples = Tset.diff a.tuples b.tuples }

let project names r =
  let schema = Schema.project names r.schema in
  let idx = List.map (fun n -> Schema.index n r.schema) names in
  let proj t = Array.of_list (List.map (fun i -> Tuple.get t i) idx) in
  map schema proj r

let rename from_ to_ r = { r with schema = Schema.rename from_ to_ r.schema }

let rename_all names r =
  if List.length names <> Schema.arity r.schema then
    Schema.error "rename: expected %d names" (Schema.arity r.schema);
  let schema =
    List.map2 (fun (a : Schema.attribute) name -> { a with Schema.name }) r.schema names
  in
  Schema.check_distinct schema;
  { r with schema }

let product a b =
  let schema = Schema.concat_disjoint a.schema b.schema in
  let tuples =
    Tset.fold
      (fun ta acc ->
        Tset.fold (fun tb acc -> Tset.add (Tuple.concat ta tb) acc) b.tuples acc)
      a.tuples Tset.empty
  in
  { schema; tuples }

(** Natural join on the common attribute names.  A hash-partitioned build on
    the smaller side keeps this near-linear, which matters for the scaling
    benches. *)
let natural_join a b =
  let shared = Schema.names (Schema.common a.schema b.schema) in
  if shared = [] then product a b
  else begin
    let ia = List.map (fun n -> Schema.index n a.schema) shared in
    let ib = List.map (fun n -> Schema.index n b.schema) shared in
    let b_rest =
      List.filteri
        (fun i _ -> not (List.mem i ib))
        (List.mapi (fun i (attr : Schema.attribute) -> (i, attr)) b.schema
         |> List.map snd)
    in
    (* positions of b's non-shared attributes *)
    let ib_rest =
      List.filter (fun i -> not (List.mem i ib))
        (List.init (Schema.arity b.schema) Fun.id)
    in
    let schema = a.schema @ b_rest in
    let key idx t = List.map (fun i -> Tuple.get t i) idx in
    let table = Hashtbl.create (max 16 (cardinality b)) in
    Tset.iter (fun t -> Hashtbl.add table (key ib t) t) b.tuples;
    let tuples =
      Tset.fold
        (fun ta acc ->
          let matches = Hashtbl.find_all table (key ia ta) in
          List.fold_left
            (fun acc tb ->
              let extra = Array.of_list (List.map (Tuple.get tb) ib_rest) in
              Tset.add (Array.append ta extra) acc)
            acc matches)
        a.tuples Tset.empty
    in
    { schema; tuples }
  end

(** Relational division [a ÷ b]: tuples [t] over (attrs(a) − attrs(b)) such
    that for every tuple [u] in [b], [t ⋈ u ∈ a].  This is the operator the
    tutorial's Q3 ("sailors who reserved all red boats") revolves around. *)
let division a b =
  let b_names = Schema.names b.schema in
  List.iter
    (fun n ->
      if not (Schema.mem n a.schema) then
        Schema.error "division: attribute %S of divisor not in dividend" n)
    b_names;
  let keep =
    List.filter (fun n -> not (List.mem n b_names)) (Schema.names a.schema)
  in
  let candidates = project keep a in
  let required = tuples b in
  let ia = List.map (fun n -> Schema.index n a.schema) keep in
  let ja = List.map (fun n -> Schema.index n a.schema) b_names in
  (* index a by its [keep] part *)
  let table = Hashtbl.create (max 16 (cardinality a)) in
  Tset.iter
    (fun t ->
      let k = List.map (Tuple.get t) ia in
      let v = List.map (Tuple.get t) ja in
      Hashtbl.add table k v)
    a.tuples;
  let jb = List.map (fun n -> Schema.index n b.schema) b_names in
  filter
    (fun cand ->
      let have = Hashtbl.find_all table (Array.to_list cand) in
      List.for_all
        (fun u ->
          let uvals = List.map (Tuple.get u) jb in
          List.exists (fun v -> List.for_all2 Value.equal v uvals) have)
        required)
    candidates

(** All values appearing anywhere in the relation — the building block of the
    active domain used by calculus evaluation. *)
let active_domain r =
  fold (fun t acc -> Array.fold_left (fun acc v -> v :: acc) acc t) r []
  |> List.sort_uniq Value.compare

let pp ppf r =
  let hdr = String.concat " | " (Schema.names r.schema) in
  Fmt.pf ppf "%s@." hdr;
  Fmt.pf ppf "%s@." (String.make (String.length hdr) '-');
  iter
    (fun t ->
      Fmt.pf ppf "%s@."
        (String.concat " | " (List.map Value.to_string (Tuple.to_list t))))
    r

let to_string r = Fmt.str "%a" pp r
