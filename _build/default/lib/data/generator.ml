(** Deterministic pseudo-random database instances over the sailors schema.

    Used for differential testing (the same query in five languages must
    agree on random instances) and for the scaling benchmarks.  A simple
    splitmix-style PRNG keeps generation reproducible without depending on
    [Random] global state. *)

type rng = { mutable state : int64 }

let rng seed = { state = Int64.of_int (seed * 2654435769 + 1) }

let next r =
  (* splitmix64 step *)
  r.state <- Int64.add r.state 0x9E3779B97F4A7C15L;
  let z = r.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int r bound =
  if bound <= 0 then 0
  else Int64.to_int (Int64.rem (Int64.shift_right_logical (next r) 1) (Int64.of_int bound))

let pick r xs = List.nth xs (int r (List.length xs))

let names =
  [ "Dustin"; "Brutus"; "Lubber"; "Andy"; "Rusty"; "Horatio"; "Zorba"; "Art";
    "Bob"; "Mia"; "Noor"; "Kai"; "Lena"; "Ravi"; "Sam" ]

let colors = [ "red"; "green"; "blue"; "white" ]
let boat_names = [ "Interlake"; "Clipper"; "Marine"; "Sunset"; "Pinta" ]

(** A random sailors database with [n_sailors] sailors, [n_boats] boats, and
    [n_reserves] reservations (duplicates collapse under set semantics). *)
let sailors_db ?(n_sailors = 20) ?(n_boats = 8) ?(n_reserves = 40) seed =
  let r = rng seed in
  let sailor_rows =
    List.init n_sailors (fun k ->
        [ Value.Int (k + 1); Value.String (pick r names);
          Value.Int (1 + int r 10);
          Value.Float (float_of_int (16 + int r 50)) ])
  in
  let boat_rows =
    List.init n_boats (fun k ->
        [ Value.Int (100 + k); Value.String (pick r boat_names);
          Value.String (pick r colors) ])
  in
  let reserve_rows =
    List.init n_reserves (fun _ ->
        [ Value.Int (1 + int r n_sailors); Value.Int (100 + int r n_boats);
          Value.String (Printf.sprintf "%d/%d" (1 + int r 12) (1 + int r 28)) ])
  in
  Database.of_list
    [ ("Sailor", Relation.of_lists Sample_db.sailor_schema sailor_rows);
      ("Boat", Relation.of_lists Sample_db.boat_schema boat_rows);
      ("Reserves", Relation.of_lists Sample_db.reserves_schema reserve_rows) ]

(** A family of instances of growing size for the scaling benches. *)
let scaling_instances sizes =
  List.map
    (fun n ->
      ( n,
        sailors_db ~n_sailors:n ~n_boats:(max 4 (n / 10))
          ~n_reserves:(n * 2) (n + 7) ))
    sizes

(** Random monadic-predicate structure over a small universe: used to test
    the set-diagram formalisms (Euler, Venn) against FOL semantics. *)
let monadic_db ?(universe = 8) ?(preds = [ "P"; "Q"; "R" ]) seed =
  let r = rng seed in
  let schema = Schema.make [ ("x", Value.Tint) ] in
  let rel _name =
    let rows =
      List.filter_map
        (fun k -> if int r 2 = 0 then Some [ Value.Int k ] else None)
        (List.init universe (fun i -> i))
    in
    Relation.of_lists schema rows
  in
  Database.of_list (List.map (fun p -> (p, rel p)) preds)
