(* Tests for the SQL front-end: parsing, resolution, translation,
   evaluation. *)

module Ast = Diagres_sql.Ast
module D = Diagres_data

let db = Testutil.db
let schemas = Testutil.schemas
let parse = Diagres_sql.Parser.parse
let eval src = Diagres_sql.To_ra.eval_string db src

(* ---------------- parser ---------------- *)

let test_parse_basic () =
  match parse "SELECT sid FROM Sailor" with
  | Ast.Query { Ast.select = [ Ast.Item (Ast.Col { Ast.table = None; column = "sid" }, None) ];
                from = [ { Ast.name = "Sailor"; alias = "Sailor" } ];
                where = Ast.True; _ } -> ()
  | _ -> Alcotest.fail "basic select shape"

let test_parse_case_insensitive () =
  let a = parse "select sid from Sailor where rating = 10" in
  let b = parse "SELECT sid FROM Sailor WHERE rating = 10" in
  Alcotest.(check bool) "case-insensitive keywords" true (a = b)

let test_parse_aliases () =
  match parse "SELECT s.sid FROM Sailor AS s" with
  | Ast.Query { Ast.from = [ { Ast.name = "Sailor"; alias = "s" } ]; _ } -> ()
  | _ -> Alcotest.fail "alias with AS"

let test_parse_join_on () =
  match parse "SELECT s.sid FROM Sailor s JOIN Reserves r ON s.sid = r.sid" with
  | Ast.Query { Ast.from = [ _; _ ]; where = Ast.And (Ast.Cmp _, Ast.True); _ } -> ()
  | Ast.Query { Ast.from = [ _; _ ]; where = Ast.And _; _ } -> ()
  | _ -> Alcotest.fail "join...on folded into where"

let test_parse_not_in () =
  match parse "SELECT sid FROM Sailor WHERE sid NOT IN (SELECT sid FROM Reserves)" with
  | Ast.Query { Ast.where = Ast.Not (Ast.In _); _ } -> ()
  | _ -> Alcotest.fail "NOT IN"

let test_parse_set_ops () =
  match parse "SELECT sid FROM Sailor INTERSECT SELECT sid FROM Reserves EXCEPT SELECT bid FROM Boat" with
  | Ast.Except (Ast.Intersect _, _) -> ()
  | _ -> Alcotest.fail "left-assoc set operators"

let test_parse_errors () =
  let fails s =
    match parse s with
    | exception Diagres_sql.Parser.Parse_error _ -> ()
    | _ -> Alcotest.failf "should not parse: %s" s
  in
  fails "SELECT FROM Sailor";
  fails "SELECT sid Sailor";
  fails "SELECT sid FROM Sailor WHERE";
  fails "SELECT sid FROM Sailor WHERE sid IN SELECT sid FROM Reserves"

let test_pretty_roundtrip () =
  List.iter
    (fun e ->
      let src = e.Diagres.Catalog.sql in
      let st = parse src in
      let st2 = parse (Diagres_sql.Pretty.to_string st) in
      Alcotest.(check bool) ("pretty roundtrip " ^ e.Diagres.Catalog.id) true
        (st = st2))
    Diagres.Catalog.all

(* ---------------- resolution ---------------- *)

let test_resolve_star () =
  let q = Diagres_sql.Resolve.query schemas (Diagres_sql.Parser.parse_query "SELECT * FROM Boat") in
  Alcotest.(check int) "star expands" 3 (List.length q.Ast.select)

let test_resolve_bare_columns () =
  let q =
    Diagres_sql.Resolve.query schemas
      (Diagres_sql.Parser.parse_query
         "SELECT sname FROM Sailor WHERE rating = 10")
  in
  match q.Ast.select with
  | [ Ast.Item (Ast.Col { Ast.table = Some "Sailor"; _ }, None) ] -> ()
  | _ -> Alcotest.fail "bare column qualified"

let test_resolve_correlation () =
  (* inner query referencing outer alias resolves *)
  let st =
    parse
      "SELECT s.sid FROM Sailor s WHERE EXISTS (SELECT r.sid FROM Reserves \
       r WHERE r.sid = s.sid)"
  in
  ignore (Diagres_sql.Resolve.statement schemas st)

let test_resolve_errors () =
  let fails src =
    match Diagres_sql.Resolve.statement schemas (parse src) with
    | exception Diagres_sql.Resolve.Resolve_error _ -> ()
    | _ -> Alcotest.failf "should not resolve: %s" src
  in
  fails "SELECT zzz FROM Sailor";
  fails "SELECT sid FROM Nowhere";
  fails "SELECT x.sid FROM Sailor s";
  fails "SELECT sid FROM Sailor s, Reserves r";  (* ambiguous sid *)
  fails "SELECT s.sid FROM Sailor s, Sailor s";  (* duplicate alias *)
  fails "SELECT sid FROM Sailor WHERE sid IN (SELECT sid, bid FROM Reserves)"

(* ---------------- evaluation ---------------- *)

let test_eval_catalog () =
  List.iter
    (fun e ->
      match e.Diagres.Catalog.expected_sids with
      | Some sids ->
        Testutil.check_same_rows
          ("sql " ^ e.Diagres.Catalog.id)
          (Testutil.sids sids)
          (eval e.Diagres.Catalog.sql)
      | None -> ())
    Diagres.Catalog.all

let test_eval_in () =
  Testutil.check_same_rows "IN subquery"
    (Testutil.sids [ 22; 31; 64; 74; 95 ])
    (eval "SELECT sid FROM Sailor WHERE sid IN (SELECT sid FROM Reserves)")

let test_eval_not_in () =
  Testutil.check_same_rows "NOT IN"
    (Testutil.sids [ 29; 32; 58; 71; 85 ])
    (eval "SELECT sid FROM Sailor WHERE sid NOT IN (SELECT sid FROM Reserves)")

let test_eval_intersect_except () =
  Testutil.check_same_rows "INTERSECT"
    (Testutil.sids [ 22; 31; 64; 74; 95 ])
    (eval "SELECT sid FROM Sailor INTERSECT SELECT sid FROM Reserves");
  Testutil.check_same_rows "EXCEPT"
    (Testutil.sids [ 29; 32; 58; 71; 85 ])
    (eval "SELECT sid FROM Sailor EXCEPT SELECT sid FROM Reserves")

let test_eval_correlated_double_nesting () =
  (* q3 through the SQL path *)
  Testutil.check_same_rows "division via NOT EXISTS"
    (Testutil.sids D.Sample_db.q3_expected_sids)
    (eval (Diagres.Catalog.find "q3").Diagres.Catalog.sql)

let test_eval_or_where () =
  Testutil.check_same_rows "WHERE with OR"
    (Testutil.sids [ 22; 31; 64; 74; 95 ])
    (eval
       "SELECT s.sid FROM Sailor s, Reserves r, Boat b WHERE s.sid = r.sid \
        AND r.bid = b.bid AND (b.color = 'red' OR b.color = 'green')")

let test_eval_self_join () =
  let r =
    eval
      "SELECT s1.sid, s2.sid FROM Sailor s1, Sailor s2 WHERE s1.rating = \
       s2.rating AND s1.age > s2.age"
  in
  Alcotest.(check int) "pairs" 4 (D.Relation.cardinality r)

(* ---------------- translations ---------------- *)

let test_sql_to_ra_semantics () =
  List.iter
    (fun e ->
      let st = parse e.Diagres.Catalog.sql in
      let ra = Diagres_sql.To_ra.statement schemas st in
      Testutil.check_same_rows
        ("sql→ra " ^ e.Diagres.Catalog.id)
        (Diagres_sql.To_ra.eval db st)
        (Diagres_ra.Eval.eval db ra))
    Diagres.Catalog.all

let test_sql_to_trc_panels () =
  let st = parse (Diagres.Catalog.find "q4").Diagres.Catalog.sql in
  Alcotest.(check int) "union gives two panels" 2
    (List.length (Diagres_sql.To_trc.statement schemas st))

let test_trc_to_sql_roundtrip () =
  (* TRC → SQL → parse → eval agrees with direct TRC evaluation *)
  List.iter
    (fun e ->
      let q = Diagres_rc.Trc_parser.parse e.Diagres.Catalog.trc in
      let panels = Diagres_rc.Translate.drawable_panels schemas [ q ] in
      let sql_text = Diagres_sql.Of_trc.to_string panels in
      let back = parse sql_text in
      Testutil.check_same_rows
        ("trc→sql " ^ e.Diagres.Catalog.id)
        (Diagres_rc.Trc.eval db q)
        (Diagres_sql.To_ra.eval db back))
    Diagres.Catalog.all

let prop_ra_to_sql_roundtrip =
  QCheck.Test.make ~name:"RA → TRC → SQL → eval preserves semantics"
    ~count:50
    (Testutil.arbitrary_ra ~fuel:3 ())
    (fun e ->
      let panels = Diagres_rc.Translate.ra_to_trc Testutil.env e in
      match panels with
      | [] -> D.Relation.is_empty (Diagres_ra.Eval.eval db e)
      | _ ->
        let sql_text = Diagres_sql.Of_trc.to_string panels in
        let back = parse sql_text in
        D.Relation.same_rows
          (Diagres_ra.Eval.eval db e)
          (Diagres_sql.To_ra.eval db back))

let test_sql_depth_and_tables () =
  let st = parse (Diagres.Catalog.find "q3").Diagres.Catalog.sql in
  Alcotest.(check int) "nesting depth" 3 (Ast.statement_depth st);
  Alcotest.(check int) "table occurrences" 3 (Ast.statement_tables st)

let () =
  Alcotest.run "sql"
    [
      ( "parser",
        [ Alcotest.test_case "basic" `Quick test_parse_basic;
          Alcotest.test_case "case insensitive" `Quick
            test_parse_case_insensitive;
          Alcotest.test_case "aliases" `Quick test_parse_aliases;
          Alcotest.test_case "join..on" `Quick test_parse_join_on;
          Alcotest.test_case "not in" `Quick test_parse_not_in;
          Alcotest.test_case "set ops" `Quick test_parse_set_ops;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "pretty roundtrip" `Quick test_pretty_roundtrip ] );
      ( "resolve",
        [ Alcotest.test_case "star" `Quick test_resolve_star;
          Alcotest.test_case "bare columns" `Quick test_resolve_bare_columns;
          Alcotest.test_case "correlation" `Quick test_resolve_correlation;
          Alcotest.test_case "errors" `Quick test_resolve_errors ] );
      ( "eval",
        [ Alcotest.test_case "catalog" `Quick test_eval_catalog;
          Alcotest.test_case "IN" `Quick test_eval_in;
          Alcotest.test_case "NOT IN" `Quick test_eval_not_in;
          Alcotest.test_case "INTERSECT/EXCEPT" `Quick
            test_eval_intersect_except;
          Alcotest.test_case "correlated double nesting" `Quick
            test_eval_correlated_double_nesting;
          Alcotest.test_case "OR in WHERE" `Quick test_eval_or_where;
          Alcotest.test_case "self join" `Quick test_eval_self_join ] );
      ( "translate",
        [ Alcotest.test_case "sql→ra" `Quick test_sql_to_ra_semantics;
          Alcotest.test_case "union panels" `Quick test_sql_to_trc_panels;
          Alcotest.test_case "trc→sql roundtrip" `Quick
            test_trc_to_sql_roundtrip;
          Testutil.qtest prop_ra_to_sql_roundtrip;
          Alcotest.test_case "depth/tables stats" `Quick
            test_sql_depth_and_tables ] );
    ]
