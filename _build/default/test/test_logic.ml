(* Tests for propositional logic, FOL, and finite-structure evaluation. *)

module P = Diagres_logic.Prop
module F = Diagres_logic.Fol
module S = Diagres_logic.Structure

(* ---------------- Prop ---------------- *)

let test_prop_eval () =
  let f = P.Implies (P.Var "p", P.Var "q") in
  Alcotest.(check bool) "p→q under p=1,q=0" false
    (P.eval [ ("p", true); ("q", false) ] f);
  Alcotest.(check bool) "p→q under p=0" true
    (P.eval [ ("p", false); ("q", false) ] f);
  Alcotest.(check bool) "iff" true
    (P.eval [ ("p", true); ("q", true) ] (P.Iff (P.Var "p", P.Var "q")))

let test_prop_tautologies () =
  Alcotest.(check bool) "excluded middle" true
    (P.tautology (P.Or (P.Var "p", P.Not (P.Var "p"))));
  Alcotest.(check bool) "contradiction unsat" false
    (P.satisfiable (P.And (P.Var "p", P.Not (P.Var "p"))));
  Alcotest.(check bool) "peirce's law" true
    (P.tautology
       P.(Implies (Implies (Implies (Var "p", Var "q"), Var "p"), Var "p")))

let test_prop_parser () =
  let f = P.parse "(p & q) -> !r | s" in
  Alcotest.(check string) "printed" "p & q -> !r | s" (P.to_string f);
  Alcotest.check_raises "trailing"
    (P.Parse_error "trailing input at offset 2") (fun () ->
      ignore (P.parse "p q"))

let prop_print_parse_roundtrip =
  QCheck.Test.make ~name:"Prop: parse ∘ print = id (up to equivalence)"
    ~count:200 (Testutil.arbitrary_prop ())
    (fun f -> P.equivalent f (P.parse (P.to_string f)))

let prop_nnf_equiv =
  QCheck.Test.make ~name:"Prop: nnf preserves semantics" ~count:200
    (Testutil.arbitrary_prop ())
    (fun f -> P.equivalent f (P.nnf f))

let prop_cnf_dnf_equiv =
  QCheck.Test.make ~name:"Prop: cnf and dnf preserve semantics" ~count:100
    (Testutil.arbitrary_prop ~fuel:3 ())
    (fun f -> P.equivalent f (P.cnf f) && P.equivalent f (P.dnf f))

let prop_simplify_equiv =
  QCheck.Test.make ~name:"Prop: simplify preserves semantics" ~count:200
    (Testutil.arbitrary_prop ())
    (fun f -> P.equivalent f (P.simplify f))

let prop_truth_table_agree =
  QCheck.Test.make ~name:"truth table models ⊆ assignments" ~count:100
    (Testutil.arbitrary_prop ~fuel:3 ())
    (fun f ->
      let t = Diagres_logic.Truth_table.build f in
      List.for_all
        (fun r -> P.eval r.Diagres_logic.Truth_table.assignment f)
        (Diagres_logic.Truth_table.models t))

(* ---------------- Fol ---------------- *)

let sailor_atom =
  F.Pred ("Sailor", [ F.Var "s"; F.Var "n"; F.Var "r"; F.Var "a" ])

let test_fol_free_vars () =
  let f = F.Exists ("s", F.Exists ("n", sailor_atom)) in
  Alcotest.(check (list string)) "free" [ "a"; "r" ] (F.free_var_list f);
  Alcotest.(check bool) "sentence" true
    (F.is_sentence (F.exists_many [ "s"; "n"; "r"; "a" ] sailor_atom))

let test_fol_subst () =
  let f = F.Exists ("x", F.Cmp (F.Eq, F.Var "x", F.Var "y")) in
  let g = F.subst "y" (F.cint 5) f in
  Alcotest.(check (list string)) "no free vars" [] (F.free_var_list g);
  (* substitution does not touch bound occurrences *)
  let h = F.subst "x" (F.cint 7) f in
  Alcotest.(check bool) "bound x untouched" true (h = f)

let test_fol_existentialize () =
  let f = F.Forall ("x", F.Pred ("P", [ F.Var "x" ])) in
  match F.existentialize f with
  | F.Not (F.Exists ("x", F.Not (F.Pred ("P", _)))) -> ()
  | g -> Alcotest.failf "unexpected shape: %s" (F.to_string g)

let test_structure_eval () =
  let db = Diagres_data.Sample_db.db in
  let st = S.for_formula F.True db in
  Alcotest.(check bool) "true" true (S.eval_sentence st F.True);
  (* there is a red boat *)
  let f =
    F.exists_many [ "b"; "n"; "c" ]
      (F.And
         ( F.Pred ("Boat", [ F.Var "b"; F.Var "n"; F.Var "c" ]),
           F.Cmp (F.Eq, F.Var "c", F.cstr "red") ))
  in
  let st = S.for_formula f db in
  Alcotest.(check bool) "red boat exists" true (S.eval_sentence st f);
  (* no boat is named after a sailor rating (silly but false) *)
  let g =
    F.exists_many [ "b"; "n"; "c" ]
      (F.And
         ( F.Pred ("Boat", [ F.Var "b"; F.Var "n"; F.Var "c" ]),
           F.Cmp (F.Eq, F.Var "c", F.cstr "purple") ))
  in
  let st = S.for_formula g db in
  Alcotest.(check bool) "no purple boat" false (S.eval_sentence st g)

let test_structure_constants_extend_universe () =
  (* x = 'mauve' is satisfiable only if 'mauve' is in the universe *)
  let db = Diagres_data.Sample_db.db in
  let f = F.Exists ("x", F.Cmp (F.Eq, F.Var "x", F.cstr "mauve")) in
  let st = S.for_formula f db in
  Alcotest.(check bool) "constant added" true (S.eval_sentence st f)

let test_structure_errors () =
  let db = Diagres_data.Sample_db.db in
  let st = S.for_formula F.True db in
  Alcotest.check_raises "unbound var" (S.Eval_error "unbound variable x")
    (fun () -> ignore (S.holds st [] (F.Cmp (F.Eq, F.Var "x", F.cint 1))));
  Alcotest.check_raises "unknown predicate"
    (S.Eval_error "unknown predicate Zap") (fun () ->
      ignore (S.holds st [] (F.Pred ("Zap", [ F.cint 1 ]))));
  Alcotest.check_raises "not a sentence"
    (S.Eval_error "not a sentence; free variables: x") (fun () ->
      ignore (S.eval_sentence st (F.Cmp (F.Eq, F.Var "x", F.Var "x"))))

let prop_miniscope_preserves_semantics =
  QCheck.Test.make ~name:"Fol: miniscope preserves truth" ~count:120
    (QCheck.pair (Testutil.arbitrary_fol_sentence ~fuel:3 ()) QCheck.small_int)
    (fun (f, seed) ->
      let db = Testutil.monadic_db seed in
      let g = F.miniscope f in
      let st1 = S.for_formula f db and st2 = S.for_formula g db in
      S.eval_sentence st1 f = S.eval_sentence st2 g)

let prop_nnf_fol_preserves_semantics =
  QCheck.Test.make ~name:"Fol: nnf/existentialize preserve truth" ~count:120
    (QCheck.pair (Testutil.arbitrary_fol_sentence ~fuel:3 ()) QCheck.small_int)
    (fun (f, seed) ->
      let db = Testutil.monadic_db seed in
      let st = S.for_formula f db in
      let a = S.eval_sentence st f in
      a = S.eval_sentence st (F.nnf f)
      && a = S.eval_sentence st (F.existentialize f))

let prop_guards_change_nothing =
  (* answers with guards must equal a reference evaluation via holds on the
     full universe obtained by disabling guards through obfuscation: we
     compare [answers] against per-element [holds] *)
  QCheck.Test.make ~name:"Structure: guarded answers = direct holds" ~count:60
    QCheck.small_int
    (fun seed ->
      let db = Testutil.monadic_db seed in
      let f = F.Pred ("P", [ F.Var "x" ]) in
      let st = S.for_formula f db in
      let ans = S.answers st ~order:[ "x" ] f in
      let direct =
        List.filter
          (fun v -> S.holds st [ ("x", v) ] f)
          st.S.universe
      in
      List.sort compare (List.map List.hd ans) = List.sort compare direct)

let () =
  Alcotest.run "logic"
    [
      ( "prop",
        [ Alcotest.test_case "eval" `Quick test_prop_eval;
          Alcotest.test_case "tautologies" `Quick test_prop_tautologies;
          Alcotest.test_case "parser" `Quick test_prop_parser;
          Testutil.qtest prop_print_parse_roundtrip;
          Testutil.qtest prop_nnf_equiv;
          Testutil.qtest prop_cnf_dnf_equiv;
          Testutil.qtest prop_simplify_equiv;
          Testutil.qtest prop_truth_table_agree ] );
      ( "fol",
        [ Alcotest.test_case "free vars" `Quick test_fol_free_vars;
          Alcotest.test_case "subst" `Quick test_fol_subst;
          Alcotest.test_case "existentialize" `Quick test_fol_existentialize;
          Testutil.qtest prop_nnf_fol_preserves_semantics;
          Testutil.qtest prop_miniscope_preserves_semantics ] );
      ( "structure",
        [ Alcotest.test_case "eval" `Quick test_structure_eval;
          Alcotest.test_case "constants extend universe" `Quick
            test_structure_constants_extend_universe;
          Alcotest.test_case "errors" `Quick test_structure_errors;
          Testutil.qtest prop_guards_change_nothing ] );
    ]
