test/test_ra.ml: Alcotest Diagres_data Diagres_logic Diagres_ra List QCheck String Testutil
