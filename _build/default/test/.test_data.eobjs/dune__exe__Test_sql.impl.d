test/test_sql.ml: Alcotest Diagres Diagres_data Diagres_ra Diagres_rc Diagres_sql List QCheck Testutil
