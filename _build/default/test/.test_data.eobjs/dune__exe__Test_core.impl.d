test/test_core.ml: Alcotest Diagres Diagres_data Diagres_diagrams Diagres_ra Diagres_rc List Printf QCheck String Testutil
