test/test_datalog.ml: Alcotest Array Diagres_data Diagres_datalog Diagres_logic Diagres_ra Diagres_rc Fun List Option QCheck Random Testutil
