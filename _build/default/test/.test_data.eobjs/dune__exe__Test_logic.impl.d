test/test_logic.ml: Alcotest Diagres_data Diagres_logic List QCheck Testutil
