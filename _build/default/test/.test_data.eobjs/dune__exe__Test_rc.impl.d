test/test_rc.ml: Alcotest Diagres_data Diagres_logic Diagres_ra Diagres_rc List QCheck String Testutil
