test/testutil.ml: Alcotest Diagres_data Diagres_logic Diagres_ra List Printf QCheck QCheck_alcotest Random
