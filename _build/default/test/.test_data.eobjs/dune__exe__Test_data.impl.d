test/test_data.ml: Alcotest Array Diagres_data Filename Fun List QCheck Sys Testutil
