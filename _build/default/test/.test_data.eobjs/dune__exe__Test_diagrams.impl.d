test/test_diagrams.ml: Alcotest Diagres Diagres_data Diagres_datalog Diagres_diagrams Diagres_logic Diagres_ra Diagres_rc Diagres_render Diagres_sql List QCheck Random String Testutil
