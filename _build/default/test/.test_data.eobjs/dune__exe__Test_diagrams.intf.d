test/test_diagrams.mli:
