test/test_rc.mli:
