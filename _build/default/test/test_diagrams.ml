(* Tests for all diagrammatic formalisms. *)

module G = Diagres_diagrams
module P = Diagres_logic.Prop
module F = Diagres_logic.Fol
module D = Diagres_data

let db = Testutil.db
let schemas = Testutil.schemas

(* ---------------- Venn ---------------- *)

let test_venn_statements () =
  let d = G.Venn.of_statements [ "A"; "B" ] [ G.Venn.All_are ("A", "B") ] in
  (* zone A∖B (bit0 only) must be shaded *)
  Alcotest.(check bool) "A∖B shaded" true (List.mem 1 d.G.Venn.shaded);
  let d2 = G.Venn.of_statements [ "A"; "B" ] [ G.Venn.Some_are ("A", "B") ] in
  Alcotest.(check int) "one xseq" 1 (List.length d2.G.Venn.xseqs)

let test_venn_entailment () =
  let premises =
    G.Venn.of_statements [ "A"; "B"; "C" ]
      [ G.Venn.All_are ("A", "B"); G.Venn.All_are ("B", "C") ]
  in
  let conclusion =
    G.Venn.of_statements [ "A"; "B"; "C" ] [ G.Venn.All_are ("A", "C") ]
  in
  Alcotest.(check bool) "barbara" true (G.Venn.entails premises conclusion);
  let wrong =
    G.Venn.of_statements [ "A"; "B"; "C" ] [ G.Venn.All_are ("C", "A") ]
  in
  Alcotest.(check bool) "converse invalid" false (G.Venn.entails premises wrong)

let test_venn_inconsistency () =
  let d =
    G.Venn.of_statements [ "A"; "B" ]
      [ G.Venn.All_are ("A", "B"); G.Venn.Some_are_not ("A", "B") ]
  in
  Alcotest.(check bool) "contradiction detected" true (G.Venn.inconsistent d)

let prop_venn_entails_sound_complete =
  QCheck.Test.make
    ~name:"Venn: syntactic entailment = semantic entailment" ~count:120
    QCheck.(pair small_int small_int)
    (fun (s1, s2) ->
      let rand = Random.State.make [| s1; s2 |] in
      let stmt () =
        let pick () =
          List.nth [ "A"; "B"; "C" ] (Random.State.int rand 3)
        in
        let a = pick () in
        let rec other () = let b = pick () in if b = a then other () else b in
        let b = other () in
        match Random.State.int rand 4 with
        | 0 -> G.Venn.All_are (a, b)
        | 1 -> G.Venn.No_are (a, b)
        | 2 -> G.Venn.Some_are (a, b)
        | _ -> G.Venn.Some_are_not (a, b)
      in
      let d1 = G.Venn.of_statements [ "A"; "B"; "C" ] [ stmt (); stmt () ] in
      let d2 = G.Venn.of_statements [ "A"; "B"; "C" ] [ stmt () ] in
      G.Venn.entails d1 d2 = G.Venn.entails_semantic d1 d2)

let prop_venn_fol_agree =
  QCheck.Test.make ~name:"Venn: diagram satisfaction = FOL truth" ~count:80
    QCheck.(pair small_int small_int)
    (fun (seed, pick) ->
      let stmts =
        [ G.Venn.All_are ("P", "Q"); G.Venn.No_are ("P", "R");
          G.Venn.Some_are ("Q", "R"); G.Venn.Some_are_not ("Q", "P") ]
      in
      let st = List.nth stmts (pick mod 4) in
      let d = G.Venn.of_statements [ "P"; "Q"; "R" ] [ st ] in
      let mdb = Testutil.monadic_db seed in
      let via_zones = G.Venn.satisfies d (G.Venn.model_of_db d mdb) in
      let via_fol = Diagres_rc.Drc.eval_sentence mdb (G.Venn.to_fol d) in
      via_zones = via_fol)

(* ---------------- Euler ---------------- *)

let test_euler_embedding () =
  let e =
    G.Euler.of_statements [ "A"; "B" ] [ G.Venn.All_are ("A", "B") ]
  in
  let v = G.Euler.to_venn e in
  Alcotest.(check bool) "same shading" true (List.mem 1 v.G.Venn.shaded)

let test_euler_refusal () =
  match
    G.Euler.of_statements [ "A"; "B" ]
      [ G.Venn.All_are ("A", "B"); G.Venn.Some_are_not ("A", "B") ]
  with
  | exception G.Euler.Euler_error _ -> ()
  | _ -> Alcotest.fail "inconsistent statements must have no Euler diagram"

let test_euler_entails () =
  let e1 =
    G.Euler.of_statements [ "A"; "B"; "C" ]
      [ G.Venn.All_are ("A", "B"); G.Venn.All_are ("B", "C") ]
  in
  let e2 = G.Euler.of_statements [ "A"; "B"; "C" ] [ G.Venn.All_are ("A", "C") ] in
  Alcotest.(check bool) "barbara via euler" true (G.Euler.entails e1 e2)

(* ---------------- Venn-Peirce ---------------- *)

let test_venn_peirce_disjunction () =
  let d1 = G.Venn.of_statements [ "A"; "B" ] [ G.Venn.All_are ("A", "B") ] in
  let d2 = G.Venn.of_statements [ "A"; "B" ] [ G.Venn.No_are ("A", "B") ] in
  let vp = G.Venn_peirce.disjoin [ d1 ] [ d2 ] in
  Alcotest.(check int) "two alternatives" 2 (List.length (G.Venn_peirce.alternatives vp));
  (* each disjunct entails the disjunction *)
  Alcotest.(check bool) "d1 ⊨ vp" true (G.Venn_peirce.entails [ d1 ] vp);
  Alcotest.(check bool) "vp ⊭ d1" false (G.Venn_peirce.entails vp [ d1 ])

let prop_venn_peirce_entails_sound =
  QCheck.Test.make ~name:"Venn-Peirce: entailment sound vs semantics"
    ~count:60 QCheck.small_int
    (fun seed ->
      let rand = Random.State.make [| seed |] in
      let stmt () =
        match Random.State.int rand 4 with
        | 0 -> G.Venn.All_are ("A", "B")
        | 1 -> G.Venn.No_are ("A", "B")
        | 2 -> G.Venn.Some_are ("A", "B")
        | _ -> G.Venn.Some_are_not ("A", "B")
      in
      let mk () = G.Venn.of_statements [ "A"; "B" ] [ stmt () ] in
      let d1 = [ mk (); mk () ] and d2 = [ mk () ] in
      (* syntactic implies semantic *)
      (not (G.Venn_peirce.entails d1 d2))
      || G.Venn_peirce.entails_semantic d1 d2)

(* ---------------- Syllogisms ---------------- *)

let test_syllogism_counts () =
  Alcotest.(check int) "256 moods" 256 (List.length G.Syllogism.all_moods);
  let valid = List.filter G.Syllogism.valid_venn G.Syllogism.all_moods in
  Alcotest.(check int) "15 valid (modern)" 15 (List.length valid);
  let traditional =
    List.filter (G.Syllogism.valid_venn ~existential_import:true)
      G.Syllogism.all_moods
  in
  Alcotest.(check int) "24 valid (existential import)" 24
    (List.length traditional)

let test_syllogism_named_forms () =
  List.iter
    (fun (name, m) ->
      Alcotest.(check bool) (name ^ " valid") true (G.Syllogism.valid_venn m))
    G.Syllogism.valid_modern

let test_syllogism_venn_matches_semantic () =
  List.iter
    (fun m ->
      Alcotest.(check bool)
        ("mood " ^ G.Syllogism.mood_to_string m)
        (G.Syllogism.valid_semantic m) (G.Syllogism.valid_venn m))
    G.Syllogism.all_moods

let prop_valid_syllogisms_hold_on_dbs =
  QCheck.Test.make ~name:"valid moods hold as FOL on random monadic DBs"
    ~count:60
    QCheck.(pair small_int small_int)
    (fun (i, seed) ->
      let _, m = List.nth G.Syllogism.valid_modern (i mod 15) in
      let mdb =
        D.Generator.monadic_db ~universe:6 ~preds:[ "S"; "M"; "P" ] seed
      in
      Diagres_rc.Drc.eval_sentence mdb (G.Syllogism.to_fol m))

(* ---------------- Alpha graphs ---------------- *)

let prop_alpha_roundtrip =
  QCheck.Test.make ~name:"alpha: of_prop/to_prop preserves equivalence"
    ~count:150 (Testutil.arbitrary_prop ())
    (fun f -> P.equivalent f (G.Eg_alpha.to_prop (G.Eg_alpha.of_prop f)))

let test_alpha_rules_modus_ponens () =
  let g0 = G.Eg_alpha.of_prop (P.And (P.Var "p", P.Implies (P.Var "p", P.Var "q"))) in
  let g1 = G.Eg_alpha.deiterate g0 ~path:[ 1 ] ~index:0 in
  let g2 = G.Eg_alpha.double_cut_erase g1 ~path:[] ~index:1 in
  let g3 = G.Eg_alpha.erase g2 ~path:[] ~index:0 in
  Alcotest.(check bool) "conclusion is q" true
    (P.equivalent (G.Eg_alpha.to_prop g3) (P.Var "q"));
  List.iter
    (fun (a, b) ->
      Alcotest.(check bool) "step sound" true (G.Eg_alpha.step_sound a b))
    [ (g0, g1); (g1, g2); (g2, g3) ]

let test_alpha_rule_side_conditions () =
  let g = G.Eg_alpha.of_prop (P.Implies (P.Var "p", P.Var "q")) in
  (* erasing inside a negative area is forbidden *)
  (match G.Eg_alpha.erase g ~path:[ 0 ] ~index:0 with
  | exception G.Eg_alpha.Rule_violation _ -> ()
  | _ -> Alcotest.fail "erasure in negative area must fail");
  (* inserting into a positive area is forbidden *)
  (match G.Eg_alpha.insert g ~path:[] (G.Eg_alpha.Atom "r") with
  | exception G.Eg_alpha.Rule_violation _ -> ()
  | _ -> Alcotest.fail "insertion into positive area must fail");
  (* deiterating without a copy is forbidden *)
  match G.Eg_alpha.deiterate g ~path:[ 0 ] ~index:0 with
  | exception G.Eg_alpha.Rule_violation _ -> ()
  | _ -> Alcotest.fail "deiteration without copy must fail"

let prop_alpha_insertion_sound =
  QCheck.Test.make ~name:"alpha: insertion into negative area is sound"
    ~count:100 (Testutil.arbitrary_prop ~fuel:3 ())
    (fun f ->
      let g = G.Eg_alpha.of_prop (P.Not f) in
      (* area [0] is inside the cut: negative *)
      match G.Eg_alpha.insert g ~path:[ 0 ] (G.Eg_alpha.Atom "w") with
      | g' -> G.Eg_alpha.step_sound g g'
      | exception G.Eg_alpha.Bad_path _ -> true
      | exception G.Eg_alpha.Rule_violation _ -> true)

let prop_alpha_double_cut_equiv =
  QCheck.Test.make ~name:"alpha: double cut preserves equivalence" ~count:100
    (Testutil.arbitrary_prop ~fuel:3 ())
    (fun f ->
      let g = G.Eg_alpha.of_prop f in
      let g' = G.Eg_alpha.double_cut_insert g ~path:[] in
      P.equivalent (G.Eg_alpha.to_prop g) (G.Eg_alpha.to_prop g'))

let prop_alpha_erasure_weakens =
  QCheck.Test.make ~name:"alpha: erasure on the sheet weakens" ~count:100
    (Testutil.arbitrary_prop ~fuel:3 ())
    (fun f ->
      let g = G.Eg_alpha.of_prop (P.And (f, P.Var "z")) in
      if g = [] then true
      else
        match G.Eg_alpha.erase g ~path:[] ~index:0 with
        | g' -> G.Eg_alpha.step_sound g g'
        | exception G.Eg_alpha.Bad_path _ -> true)

(* ---------------- Beta graphs ---------------- *)

let prop_beta_roundtrip =
  QCheck.Test.make
    ~name:"beta: of_drc/to_drc preserves truth on monadic DBs" ~count:80
    (QCheck.pair (Testutil.arbitrary_fol_sentence ~fuel:3 ()) QCheck.small_int)
    (fun (f, seed) ->
      let mdb = Testutil.monadic_db seed in
      match G.Eg_beta.of_drc f with
      | g ->
        let back = G.Eg_beta.to_drc g in
        Diagres_rc.Drc.eval_sentence mdb f
        = Diagres_rc.Drc.eval_sentence mdb back
      | exception G.Eg_beta.Unsupported _ -> true)

let test_beta_scope_distinction () =
  let inside : G.Eg_beta.t =
    { G.Eg_beta.lines = []; preds = [];
      cuts =
        [ { G.Eg_beta.lines = [ 1 ];
            preds = [ { G.Eg_beta.name = "P"; args = [ G.Eg_beta.Lig 1 ] } ];
            cuts = [] } ] }
  in
  let outside = { inside with G.Eg_beta.lines = [ 1 ] } in
  Alcotest.(check bool) "both well formed" true
    (G.Eg_beta.well_formed inside && G.Eg_beta.well_formed outside);
  let fin = G.Eg_beta.to_drc inside and fout = G.Eg_beta.to_drc outside in
  (* ¬∃x P(x)  vs  ∃x ¬P(x): on a db where P is non-empty but not total,
     the readings differ *)
  let s = D.Schema.make [ ("x", D.Value.Tint) ] in
  let mdb =
    Diagres_data.Database.of_list
      [ ("P", D.Relation.of_lists s [ [ D.Value.Int 1 ] ]);
        ("Q", D.Relation.of_lists s [ [ D.Value.Int 2 ] ]) ]
  in
  Alcotest.(check bool) "¬∃x P(x) false here" false
    (Diagres_rc.Drc.eval_sentence mdb fin);
  Alcotest.(check bool) "∃x ¬P(x) true here" true
    (Diagres_rc.Drc.eval_sentence mdb fout);
  Alcotest.(check int) "crossing ligature detected" 1
    (List.length (G.Eg_beta.crossing_ligatures outside));
  Alcotest.(check int) "no crossing in pure-inside graph" 0
    (List.length (G.Eg_beta.crossing_ligatures inside))

let prop_beta_no_crossing_unambiguous =
  (* the precise content of the "imperfect mapping" claim: ambiguity can
     only come from ligatures that cross cuts — when none do, the
     outermost and innermost (hooks-only) readings coincide semantically *)
  QCheck.Test.make
    ~name:"beta: no crossing ligature ⇒ readings agree" ~count:80
    (QCheck.pair (Testutil.arbitrary_fol_sentence ~fuel:3 ()) QCheck.small_int)
    (fun (f, seed) ->
      match G.Eg_beta.of_drc f with
      | g ->
        G.Eg_beta.crossing_ligatures g <> []
        ||
        let mdb = Testutil.monadic_db seed in
        Diagres_rc.Drc.eval_sentence mdb (G.Eg_beta.to_drc g)
        = Diagres_rc.Drc.eval_sentence mdb (G.Eg_beta.to_drc_innermost g)
      | exception G.Eg_beta.Unsupported _ -> true)

let test_beta_disconnected_rejected () =
  (* ligature used in two sibling cuts without a connection through the
     sheet is ill-formed *)
  let bad : G.Eg_beta.t =
    { G.Eg_beta.lines = []; preds = [];
      cuts =
        [ { G.Eg_beta.lines = []; preds = [ { G.Eg_beta.name = "P"; args = [ G.Eg_beta.Lig 1 ] } ]; cuts = [] };
          { G.Eg_beta.lines = []; preds = [ { G.Eg_beta.name = "Q"; args = [ G.Eg_beta.Lig 1 ] } ]; cuts = [] } ] }
  in
  Alcotest.(check bool) "ill-formed" false (G.Eg_beta.well_formed bad)

let test_beta_innermost_vs_outermost () =
  let g : G.Eg_beta.t =
    { G.Eg_beta.lines = [ 1 ]; preds = [];
      cuts =
        [ { G.Eg_beta.lines = [ 1 ];
            preds = [ { G.Eg_beta.name = "P"; args = [ G.Eg_beta.Lig 1 ] } ];
            cuts = [] } ] }
  in
  let outer = G.Eg_beta.to_drc g in
  let inner = G.Eg_beta.to_drc_innermost g in
  Alcotest.(check bool) "readings differ syntactically" true (outer <> inner)

(* ---------------- String diagrams ---------------- *)

let test_string_diagram_roundtrip () =
  let q =
    Diagres_rc.Drc_parser.parse
      "{ s | exists n, r, a (Sailor(s, n, r, a) & r = 10) }"
  in
  let sd = G.String_diagram.of_drc_query q in
  Alcotest.(check int) "one open wire" 1 (G.String_diagram.open_wire_count sd);
  let back = G.String_diagram.to_drc_query sd in
  Testutil.check_same_rows "string diagram roundtrip"
    (Diagres_rc.Drc.eval db q)
    (Diagres_rc.Drc.eval db back)

let test_string_diagram_bound_wires () =
  let q =
    Diagres_rc.Drc_parser.parse
      "{ s | exists n, r, a (Sailor(s, n, r, a) & exists b, d (Reserves(s, b, d))) }"
  in
  let sd = G.String_diagram.of_drc_query q in
  Alcotest.(check int) "five bound wires" 5
    (G.String_diagram.bound_wire_count sd)

(* ---------------- QBE ---------------- *)

let qbe_q3 () =
  let p =
    Diagres_datalog.Parser.parse
      "missing(S) :- Sailor(S, N, R, A), Boat(B, BN, 'red'), not res2(S, \
       B).\nres2(S, B) :- Reserves(S, B, D2).\nq3(S) :- Sailor(S, N, R, A), \
       not missing(S)."
  in
  G.Qbe.of_datalog Testutil.schemas p ~goal:"q3"

let test_qbe_division_steps () =
  let steps, temps, rows = G.Qbe.stats (qbe_q3 ()) in
  Alcotest.(check int) "three steps" 3 steps;
  Alcotest.(check bool) "temp relations needed" true (temps >= 2);
  Alcotest.(check bool) "rows" true (rows >= 5)

let test_qbe_ascii_shape () =
  let text = G.Qbe.to_ascii (qbe_q3 ()) in
  Alcotest.(check bool) "has skeleton borders" true
    (String.length text > 0 && String.contains text '+');
  Alcotest.(check bool) "has example elements" true
    (let rec has i =
       i + 2 <= String.length text && (String.sub text i 2 = "_S" || has (i + 1))
     in
     has 0)

let test_qbe_needs_only_goal_rules () =
  let p =
    Diagres_datalog.Parser.parse
      "a(X) :- Sailor(X, N, R, Ag).\nb(X) :- Boat(X, N, C)."
  in
  let q = G.Qbe.of_datalog Testutil.schemas p ~goal:"a" in
  Alcotest.(check int) "only one step" 1 (List.length q)

(* ---------------- DFQL ---------------- *)

let test_dfql_structure () =
  let e = Diagres.Catalog.parsed_ra (Diagres.Catalog.find "q3") in
  let d = G.Dfql.of_ra e in
  Alcotest.(check int) "nodes = RA size" (Diagres_ra.Ast.size e)
    (G.Dfql.node_count d);
  Alcotest.(check int) "edges = nodes - 1 (tree)" (G.Dfql.node_count d - 1)
    (G.Dfql.edge_count d)

let test_dfql_ascii () =
  let d = G.Dfql.of_ra (Diagres_ra.Parser.parse "Sailor join Reserves") in
  let t = G.Dfql.to_ascii d in
  Alcotest.(check bool) "mentions both relations" true
    (let has sub =
       let n = String.length sub in
       let rec go i = i + n <= String.length t && (String.sub t i n = sub || go (i + 1)) in
       go 0
     in
     has "Sailor" && has "Reserves")

let prop_dfql_layout_no_overlap =
  QCheck.Test.make ~name:"DFQL layout: no overlapping nodes" ~count:60
    (Testutil.arbitrary_ra ~fuel:4 ())
    (fun e ->
      let d = G.Dfql.of_ra e in
      let result = G.Dfql.layout d in
      let rects = List.map (fun p -> p.Diagres_render.Layout.rect) result.Diagres_render.Layout.nodes in
      let overlap (a : Diagres_render.Geom.rect) (b : Diagres_render.Geom.rect) =
        a.Diagres_render.Geom.rx < b.Diagres_render.Geom.rx +. b.Diagres_render.Geom.w
        && b.Diagres_render.Geom.rx < a.Diagres_render.Geom.rx +. a.Diagres_render.Geom.w
        && a.Diagres_render.Geom.ry < b.Diagres_render.Geom.ry +. b.Diagres_render.Geom.h
        && b.Diagres_render.Geom.ry < a.Diagres_render.Geom.ry +. a.Diagres_render.Geom.h
      in
      let rec pairwise = function
        | [] -> true
        | r :: rest -> List.for_all (fun r' -> not (overlap r r')) rest && pairwise rest
      in
      pairwise rects)

(* ---------------- Relational Diagrams & QueryVis ---------------- *)

let q3_trc () = Diagres.Catalog.parsed_trc (Diagres.Catalog.find "q3")

let test_rd_structure () =
  let rd = G.Relational_diagram.of_trc (q3_trc ()) in
  Alcotest.(check int) "one panel" 1 (G.Relational_diagram.panel_count rd);
  let stats = List.hd (G.Relational_diagram.stats rd) in
  Alcotest.(check int) "two nested cuts" 2 stats.G.Scene.cuts;
  Alcotest.(check int) "no arrows" 0 stats.G.Scene.arrows

let test_rd_roundtrip_eval () =
  let rd = G.Relational_diagram.of_trc (q3_trc ()) in
  let back = List.hd (G.Relational_diagram.to_trc rd) in
  Testutil.check_same_rows "rd reading"
    (Testutil.sids D.Sample_db.q3_expected_sids)
    (Diagres_rc.Trc.eval db back)

let test_rd_panels_for_union () =
  let panels =
    Diagres_rc.Translate.drawable_panels schemas
      [ Diagres.Catalog.parsed_trc (Diagres.Catalog.find "q4") ]
  in
  let rd = G.Relational_diagram.of_trc_queries panels in
  Alcotest.(check int) "two panels" 2 (G.Relational_diagram.panel_count rd)

let test_rd_svg_wellformed () =
  let rd = G.Relational_diagram.of_trc (q3_trc ()) in
  List.iter
    (fun svg ->
      Alcotest.(check bool) "svg open/close" true
        (String.length svg > 100
        && String.sub svg 0 4 = "<svg"
        && String.sub svg (String.length svg - 7) 6 = "</svg>"))
    (G.Relational_diagram.to_svg rd)

let test_queryvis_arrows () =
  let qv = G.Queryvis.of_trc (q3_trc ()) in
  Alcotest.(check bool) "reading arrows present" true
    (G.Queryvis.arrow_count qv > 0);
  let rd_stats = List.hd (G.Relational_diagram.stats (G.Relational_diagram.of_trc (q3_trc ()))) in
  Alcotest.(check int) "RD needs no arrows" 0 rd_stats.G.Scene.arrows

let test_scene_cut_depth () =
  let rd = G.Relational_diagram.of_trc (q3_trc ()) in
  let scene = (List.hd rd.G.Relational_diagram.panels).G.Relational_diagram.scene in
  (* the sailor box is at depth 0; boat box inside one cut; reserves inside
     two *)
  Alcotest.(check (option int)) "sailor depth" (Some 0)
    (G.Scene.cut_depth scene "var:s");
  Alcotest.(check (option int)) "boat depth" (Some 1)
    (G.Scene.cut_depth scene "var:b");
  Alcotest.(check (option int)) "reserves depth" (Some 2)
    (G.Scene.cut_depth scene "var:r")

(* ---------------- Conceptual graphs ---------------- *)

let test_conceptual_graph () =
  let q =
    Diagres_rc.Trc_parser.parse
      "{ s.sid | s in Sailor, r in Reserves : s.sid = r.sid and r.bid = 102 }"
  in
  let cg = G.Conceptual_graph.of_trc q in
  Alcotest.(check bool) "concepts >= 2" true (G.Conceptual_graph.concept_count cg >= 2);
  Alcotest.(check int) "two relation nodes" 2 (G.Conceptual_graph.relation_count cg);
  let lin = G.Conceptual_graph.to_linear cg in
  Alcotest.(check bool) "linear form mentions Sailor" true
    (let n = String.length lin in
     let rec go i = i + 6 <= n && (String.sub lin i 6 = "Sailor" || go (i + 1)) in
     go 0)

(* ---------------- Line abuse ---------------- *)

let test_line_abuse_contrast () =
  let sentence =
    Diagres_rc.Drc_parser.parse_formula
      "exists s, b, d (Reserves(s, b, d) & s <> b)"
  in
  let beta_report = G.Line_abuse.of_beta (G.Eg_beta.of_drc sentence) in
  Alcotest.(check bool) "beta abuses lines" true
    (beta_report.G.Line_abuse.abused_lines > 0);
  let rd =
    G.Relational_diagram.of_trc
      (Diagres_rc.Trc_parser.parse
         "{ r.sid | r in Reserves : r.sid <> r.bid }")
  in
  let scene = (List.hd rd.G.Relational_diagram.panels).G.Relational_diagram.scene in
  let rd_report = G.Line_abuse.of_scene scene in
  Alcotest.(check int) "RD lines carry one role" 0
    rd_report.G.Line_abuse.abused_lines

(* ---------------- Scene rendering ---------------- *)

let test_scene_ascii_nonempty () =
  let rd = G.Relational_diagram.of_trc (q3_trc ()) in
  let a = G.Relational_diagram.to_ascii rd in
  Alcotest.(check bool) "ascii has box corners" true (String.contains a '+')

let test_svg_escaping () =
  let scene =
    G.Scene.scene
      [ G.Scene.leaf ~id:"x" "a < b & c \"quoted\"" ]
  in
  let svg = G.Scene.to_svg scene in
  Alcotest.(check bool) "no raw < in text" true
    (let n = String.length svg in
     let rec go i =
       i + 4 > n || (String.sub svg i 4 <> "a < " && go (i + 1))
     in
     go 0)

(* ---------------- Constraint diagrams ---------------- *)

let cd_all_a_are_b () =
  (* contour semantics: shading A∖B ⇒ All A are B *)
  let d = G.Constraint_diagram.create [ "P"; "Q" ] in
  G.Constraint_diagram.add_shading d [ 1 (* P only *) ]

let test_constraint_shading_fol () =
  let d = cd_all_a_are_b () in
  let f = G.Constraint_diagram.to_fol d in
  (* on a db where P ⊆ Q the sentence holds *)
  let s = D.Schema.make [ ("x", D.Value.Tint) ] in
  let subdb =
    Diagres_data.Database.of_list
      [ ("P", D.Relation.of_lists s [ [ D.Value.Int 1 ] ]);
        ("Q", D.Relation.of_lists s [ [ D.Value.Int 1 ]; [ D.Value.Int 2 ] ]) ]
  in
  Alcotest.(check bool) "P⊆Q satisfies" true
    (Diagres_rc.Drc.eval_sentence subdb f);
  let baddb =
    Diagres_data.Database.of_list
      [ ("P", D.Relation.of_lists s [ [ D.Value.Int 3 ] ]);
        ("Q", D.Relation.of_lists s [ [ D.Value.Int 1 ] ]) ]
  in
  Alcotest.(check bool) "P⊄Q violates" false
    (Diagres_rc.Drc.eval_sentence baddb f)

let test_constraint_spiders () =
  let d = G.Constraint_diagram.create [ "P"; "Q" ] in
  let d = G.Constraint_diagram.add_spider d "s1" [ 3 (* P∩Q *) ] in
  let f = G.Constraint_diagram.to_fol d in
  let s = D.Schema.make [ ("x", D.Value.Tint) ] in
  let db1 =
    Diagres_data.Database.of_list
      [ ("P", D.Relation.of_lists s [ [ D.Value.Int 1 ] ]);
        ("Q", D.Relation.of_lists s [ [ D.Value.Int 1 ] ]) ]
  in
  Alcotest.(check bool) "∃ element in P∩Q" true
    (Diagres_rc.Drc.eval_sentence db1 f);
  let db2 =
    Diagres_data.Database.of_list
      [ ("P", D.Relation.of_lists s [ [ D.Value.Int 1 ] ]);
        ("Q", D.Relation.of_lists s [ [ D.Value.Int 2 ] ]) ]
  in
  Alcotest.(check bool) "empty P∩Q fails" false
    (Diagres_rc.Drc.eval_sentence db2 f)

let test_constraint_reading_ambiguity () =
  (* ∀x∈P ∃y∈Q R(x,y) vs ∃y∈Q ∀x∈P R(x,y): classic order dependence *)
  let d = G.Constraint_diagram.create [ "P"; "Q" ] in
  let d = G.Constraint_diagram.add_spider d ~kind:G.Constraint_diagram.Universal "u" [ 1 ] in
  let d = G.Constraint_diagram.add_spider d "e" [ 2 ] in
  let d = G.Constraint_diagram.add_arrow d ~relation:"R" ~src:"u" ~dst_contour:"Q" in
  ignore d;
  (* build a db where the two orders differ for the simpler diagram
     ∀u ∃e with a distinctness constraint *)
  let d2 = G.Constraint_diagram.create [ "P" ] in
  let d2 = G.Constraint_diagram.add_spider d2 ~kind:G.Constraint_diagram.Universal "u" [ 1 ] in
  let d2 = G.Constraint_diagram.add_spider d2 "e" [ 1 ] in
  let d2 = G.Constraint_diagram.add_distinct d2 "u" "e" in
  let s = D.Schema.make [ ("x", D.Value.Tint) ] in
  let db2 =
    Diagres_data.Database.of_list
      [ ("P", D.Relation.of_lists s [ [ D.Value.Int 1 ]; [ D.Value.Int 2 ] ]) ]
  in
  (* ∀u∃e. u≠e holds with |P|=2; ∃e∀u. u≠e fails *)
  Alcotest.(check bool) "reading order matters" true
    (G.Constraint_diagram.ambiguous db2 d2);
  let orders = G.Constraint_diagram.reading_orders d2 in
  Alcotest.(check int) "two orders" 2 (List.length orders);
  Alcotest.(check (list string)) "default reads ∃ first" [ "e"; "u" ]
    (G.Constraint_diagram.default_reading d2)

let test_constraint_errors () =
  let d = G.Constraint_diagram.create [ "P" ] in
  (match G.Constraint_diagram.add_spider d "s" [] with
  | exception G.Constraint_diagram.Constraint_error _ -> ()
  | _ -> Alcotest.fail "empty habitat must fail");
  match G.Constraint_diagram.add_arrow d ~relation:"R" ~src:"ghost" ~dst_contour:"P" with
  | exception G.Constraint_diagram.Constraint_error _ -> ()
  | _ -> Alcotest.fail "arrow from unknown spider must fail"

(* ---------------- Begriffsschrift ---------------- *)

let prop_begriffsschrift_roundtrip =
  QCheck.Test.make
    ~name:"Begriffsschrift: of_fol/to_fol preserves truth" ~count:80
    (QCheck.pair (Testutil.arbitrary_fol_sentence ~fuel:3 ()) QCheck.small_int)
    (fun (f, seed) ->
      let mdb = Testutil.monadic_db seed in
      match G.Begriffsschrift.of_fol f with
      | b ->
        Diagres_rc.Drc.eval_sentence mdb f
        = Diagres_rc.Drc.eval_sentence mdb (G.Begriffsschrift.to_fol b)
      | exception G.Begriffsschrift.Unsupported _ -> true)

let test_begriffsschrift_shape () =
  let f =
    Diagres_rc.Drc_parser.parse_formula "forall x (P(x) implies Q(x))"
  in
  let b = G.Begriffsschrift.of_fol f in
  let conds, negs, gens = G.Begriffsschrift.strokes b in
  Alcotest.(check int) "one condition stroke" 1 conds;
  Alcotest.(check int) "no negation strokes" 0 negs;
  Alcotest.(check int) "one concavity" 1 gens;
  let a = G.Begriffsschrift.to_ascii b in
  Alcotest.(check bool) "judgment stroke present" true
    (String.length a > 0 && a.[0] <> ' ')

let test_begriffsschrift_derived_connectives () =
  (* ∧ and ∃ cost extra strokes — Frege's economy trade-off *)
  let conj = Diagres_rc.Drc_parser.parse_formula "exists x (P(x) & Q(x))" in
  let b = G.Begriffsschrift.of_fol conj in
  let conds, negs, gens = G.Begriffsschrift.strokes b in
  Alcotest.(check bool) "derived shape uses ¬ and →" true
    (conds >= 1 && negs >= 3 && gens = 1)

(* ---------------- Higraphs ---------------- *)

let test_higraph_schema () =
  let h = G.Higraph.of_schemas Testutil.schemas in
  Alcotest.(check int) "three blobs" 3 (List.length (G.Higraph.blobs h));
  Alcotest.(check int) "depth 1" 1 (G.Higraph.depth h);
  (* joinable-attribute edges: sid (Sailor-Reserves), bid (Boat-Reserves) *)
  Alcotest.(check int) "two join edges" 2 (List.length h.G.Higraph.edges)

let test_higraph_states () =
  let b =
    G.Higraph.blob ~label:"root"
      ~children:
        [ G.Higraph.blob ~label:"a" ~orthogonal:[ "x"; "y" ] "a";
          G.Higraph.blob ~label:"b" "b" ]
      "root"
  in
  (* a contributes 2 (orthogonal), b contributes 1 *)
  Alcotest.(check int) "denoted states" 3 (G.Higraph.denoted_states b)

let test_higraph_errors () =
  match
    G.Higraph.create
      [ G.Higraph.blob ~label:"x" "dup"; G.Higraph.blob ~label:"y" "dup" ]
  with
  | exception G.Higraph.Higraph_error _ -> ()
  | _ -> Alcotest.fail "duplicate ids must fail"

(* ---------------- Query builder model ---------------- *)

let test_builder_accepts_conjunctive () =
  let q =
    Diagres_rc.Trc_parser.parse
      "{ s.sname | s in Sailor, r in Reserves : s.sid = r.sid and r.bid = \
       102 }"
  in
  (match G.Query_builder.of_trc q with
  | Ok b ->
    Alcotest.(check int) "two tables" 2 (List.length b.G.Query_builder.tables);
    Alcotest.(check int) "two conditions" 2
      (List.length b.G.Query_builder.conditions)
  | Error _ -> Alcotest.fail "conjunctive query must be expressible")

let test_builder_rejects_negation () =
  let q = Diagres.Catalog.parsed_trc (Diagres.Catalog.find "q3") in
  Alcotest.(check bool) "division not expressible" false
    (G.Query_builder.expressible q);
  Alcotest.(check bool) "obstacle is negation" true
    (List.mem G.Query_builder.Negation (G.Query_builder.obstacles q))

let test_builder_rejects_structured_disjunction () =
  let q =
    Diagres_rc.Trc_parser.parse
      "{ s.sid | s in Sailor : s.rating = 10 or (exists r in Reserves \
       (r.sid = s.sid)) }"
  in
  Alcotest.(check bool) "structured or rejected" true
    (List.mem G.Query_builder.Deep_disjunction (G.Query_builder.obstacles q))

(* ---------------- DataPlay ---------------- *)

let dataplay_q3 () =
  (* anchor: Sailor s; ALL red boats have SOME reservation by s *)
  let module DP = G.Dataplay in
  let module T = Diagres_rc.Trc in
  DP.query ~anchor_var:"s" ~anchor_table:"Sailor"
    [ DP.node ~quantifier:DP.All
        ~predicates:[ (F.Eq, T.Field ("b", "color"), T.Const (D.Value.String "red")) ]
        ~children:
          [ DP.node ~quantifier:DP.Any
              ~predicates:
                [ (F.Eq, T.Field ("r", "sid"), T.Field ("s", "sid"));
                  (F.Eq, T.Field ("r", "bid"), T.Field ("b", "bid")) ]
              "r" "Reserves" ]
        "b" "Boat" ]

let test_dataplay_matches () =
  let matching, non = G.Dataplay.matches db (dataplay_q3 ()) in
  Testutil.check_same_rows "ALL matches q3"
    (Testutil.sids D.Sample_db.q3_expected_sids)
    matching;
  Alcotest.(check int) "non-matching complement" 8
    (D.Relation.cardinality non)

let test_dataplay_flip () =
  (* flipping the boat quantifier turns Q3 into Q1 — DataPlay's signature
     one-click correction *)
  let flipped = G.Dataplay.flip (dataplay_q3 ()) ~path:[ "b" ] in
  let matching, _ = G.Dataplay.matches db flipped in
  Testutil.check_same_rows "ANY matches q1"
    (Testutil.sids D.Sample_db.q1_expected_sids)
    matching

let test_dataplay_scene () =
  let scene = G.Dataplay.to_scene (dataplay_q3 ()) in
  let stats = G.Scene.stats scene in
  Alcotest.(check bool) "ALL scope drawn as negated-style box" true
    (stats.G.Scene.cuts >= 1)

(* ---------------- SQLVis (syntax sensitivity) ---------------- *)

let test_sqlvis_syntax_sensitivity () =
  (* semantically equal, syntactically different *)
  let exists_form =
    Diagres_sql.Parser.parse
      "SELECT s.sname FROM Sailor s WHERE EXISTS (SELECT r.sid FROM \
       Reserves r WHERE r.sid = s.sid)"
  in
  let in_form =
    Diagres_sql.Parser.parse
      "SELECT s.sname FROM Sailor s WHERE s.sid IN (SELECT r.sid FROM \
       Reserves r)"
  in
  Alcotest.(check bool) "same answers" true
    (D.Relation.same_rows
       (Diagres_sql.To_ra.eval db exists_form)
       (Diagres_sql.To_ra.eval db in_form));
  Alcotest.(check bool) "different SQLVis pictures" true
    (G.Sqlvis.syntax_signature exists_form
    <> G.Sqlvis.syntax_signature in_form);
  (* but pattern-based Relational Diagrams agree (same pattern) *)
  let rd_pattern st =
    let panels = Diagres_sql.To_trc.statement schemas st in
    Diagres.Pattern.canonical_string `Shape (List.hd panels)
  in
  Alcotest.(check string) "same RD pattern" (rd_pattern exists_form)
    (rd_pattern in_form)

let test_sqlvis_scene () =
  let st = Diagres_sql.Parser.parse (Diagres.Catalog.find "q3").Diagres.Catalog.sql in
  let v = G.Sqlvis.of_sql st in
  let stats = G.Sqlvis.stats v in
  (* three SELECT blocks appear as three relation boxes *)
  Alcotest.(check bool) "blocks visible" true (stats.G.Scene.boxes >= 3);
  Alcotest.(check bool) "NOT boxes visible" true (stats.G.Scene.cuts >= 2)

(* ---------------- SIEUFERD ---------------- *)

let sieuferd_spec () =
  let module S = G.Sieuferd in
  let module T = Diagres_rc.Trc in
  S.scope ~attrs:[ "sid"; "sname" ]
    ~children:
      [ S.scope ~attrs:[ "bid"; "day" ]
          ~conditions:[ (F.Eq, T.Field ("r", "sid"), T.Field ("s", "sid")) ]
          "r" "Reserves" ]
    "s" "Sailor"

let test_sieuferd_header () =
  let h = G.Sieuferd.header (sieuferd_spec ()) in
  Alcotest.(check string) "title" "Sailor s" h.G.Sieuferd.title;
  Alcotest.(check int) "one nested scope" 1 (List.length h.G.Sieuferd.nested)

let test_sieuferd_nested_rows () =
  let rows = G.Sieuferd.eval db (sieuferd_spec ()) in
  Alcotest.(check int) "all sailors listed" 10 (List.length rows);
  (* sailor 22 has 4 reservations nested under it *)
  let s22 =
    List.find
      (fun r ->
        List.assoc "sid" r.G.Sieuferd.values = D.Value.Int 22)
      rows
  in
  Alcotest.(check int) "nested reservations" 4
    (List.length (List.assoc "r" s22.G.Sieuferd.subrows))

let test_sieuferd_header_encodes_query () =
  (* reading the header back along the nest path gives the join query *)
  let q = G.Sieuferd.to_trc (sieuferd_spec ()) ~path:[ "r" ] in
  let direct =
    Diagres_rc.Trc_parser.parse
      "{ s.sid, s.sname, r.bid, r.day | s in Sailor, r in Reserves : r.sid \
       = s.sid }"
  in
  Testutil.check_same_rows "header reading = join query"
    (Diagres_rc.Trc.eval db direct)
    (Diagres_rc.Trc.eval db q)

(* ---------------- TableTalk ---------------- *)

let test_tabletalk_flow () =
  let st =
    Diagres_sql.Parser.parse (Diagres.Catalog.find "q3").Diagres.Catalog.sql
  in
  let f = G.Tabletalk.of_sql st in
  Alcotest.(check int) "nested depth 3" 3 (G.Tabletalk.depth f);
  Alcotest.(check bool) "tiles counted" true (G.Tabletalk.tile_count f >= 7);
  let a = G.Tabletalk.to_ascii f in
  Alcotest.(check bool) "top-down flow text" true
    (let has sub =
       let n = String.length sub in
       let rec go i = i + n <= String.length a && (String.sub a i n = sub || go (i + 1)) in
       go 0
     in
     has "[ FROM Sailor s ]" && has "NOT EXISTS")

let test_tabletalk_rejects_union () =
  let st = Diagres_sql.Parser.parse (Diagres.Catalog.find "q4").Diagres.Catalog.sql in
  match G.Tabletalk.of_sql st with
  | exception G.Tabletalk.Tabletalk_error _ -> ()
  | _ -> Alcotest.fail "union statements need multiple flows"

(* ---------------- Scene layout invariants ---------------- *)

let prop_scene_layout_containment =
  QCheck.Test.make ~name:"layout: children stay inside their boxes"
    ~count:50 (Testutil.arbitrary_ra ~fuel:3 ())
    (fun e ->
      let panels = Diagres_rc.Translate.ra_to_trc Testutil.env e in
      List.for_all
        (fun q ->
          let rd = G.Relational_diagram.of_trc q in
          let scene = (List.hd rd.G.Relational_diagram.panels).G.Relational_diagram.scene in
          let layout = G.Scene.layout scene in
          let rect_of id = List.assoc_opt id layout.G.Scene.rects in
          let module Geom = Diagres_render.Geom in
          let inside (outer : Geom.rect) (inner : Geom.rect) =
            inner.Geom.rx >= outer.Geom.rx -. 0.5
            && inner.Geom.ry >= outer.Geom.ry -. 0.5
            && Geom.right inner <= Geom.right outer +. 0.5
            && Geom.bottom inner <= Geom.bottom outer +. 0.5
          in
          let rec check (m : G.Scene.mark) =
            match m with
            | G.Scene.Leaf _ -> true
            | G.Scene.Box b -> (
              match rect_of b.G.Scene.id with
              | None -> false
              | Some outer ->
                List.for_all
                  (fun child ->
                    (match rect_of (G.Scene.mark_id child) with
                    | Some inner -> inside outer inner
                    | None -> false)
                    && check child)
                  b.G.Scene.children)
          in
          List.for_all check scene.G.Scene.marks)
        panels)

(* ---------------- Alpha proof search ---------------- *)

let test_proof_search_modus_ponens () =
  let premise =
    G.Eg_alpha.of_prop (P.And (P.Var "p", P.Implies (P.Var "p", P.Var "q")))
  in
  let goal = G.Eg_alpha.of_prop (P.Var "q") in
  match G.Eg_alpha_proof.prove ~premise ~goal () with
  | Some proof ->
    Alcotest.(check bool) "proof checks" true (G.Eg_alpha_proof.check proof);
    Alcotest.(check bool) "reaches goal" true
      (P.equivalent (G.Eg_alpha.to_prop (G.Eg_alpha_proof.conclusion proof))
         (P.Var "q"))
  | None -> Alcotest.fail "modus ponens must be derivable"

let test_proof_search_and_elim () =
  let premise = G.Eg_alpha.of_prop (P.And (P.Var "p", P.Var "q")) in
  let goal = G.Eg_alpha.of_prop (P.Var "p") in
  match G.Eg_alpha_proof.prove ~premise ~goal () with
  | Some proof ->
    Alcotest.(check bool) "proof checks" true (G.Eg_alpha_proof.check proof)
  | None -> Alcotest.fail "∧-elimination must be derivable"

let test_proof_search_double_negation () =
  let premise = G.Eg_alpha.of_prop (P.Not (P.Not (P.Var "p"))) in
  let goal = G.Eg_alpha.of_prop (P.Var "p") in
  match G.Eg_alpha_proof.prove ~premise ~goal () with
  | Some proof ->
    Alcotest.(check bool) "proof checks" true (G.Eg_alpha_proof.check proof)
  | None -> Alcotest.fail "double negation must be derivable"

let prop_proof_search_sound =
  QCheck.Test.make ~name:"found proofs are always sound" ~count:30
    (Testutil.arbitrary_prop ~fuel:2 ())
    (fun f ->
      let premise = G.Eg_alpha.of_prop (P.And (f, P.Var "zz")) in
      let goal = G.Eg_alpha.of_prop (P.Var "zz") in
      match G.Eg_alpha_proof.prove ~max_depth:3 ~premise ~goal () with
      | Some proof ->
        G.Eg_alpha_proof.check proof
        && P.entails (G.Eg_alpha.to_prop premise)
             (G.Eg_alpha.to_prop (G.Eg_alpha_proof.conclusion proof))
      | None -> true)

let () =
  Alcotest.run "diagrams"
    [
      ( "venn",
        [ Alcotest.test_case "statements" `Quick test_venn_statements;
          Alcotest.test_case "entailment" `Quick test_venn_entailment;
          Alcotest.test_case "inconsistency" `Quick test_venn_inconsistency;
          Testutil.qtest prop_venn_entails_sound_complete;
          Testutil.qtest prop_venn_fol_agree ] );
      ( "euler",
        [ Alcotest.test_case "embedding" `Quick test_euler_embedding;
          Alcotest.test_case "refusal" `Quick test_euler_refusal;
          Alcotest.test_case "entails" `Quick test_euler_entails ] );
      ( "venn-peirce",
        [ Alcotest.test_case "disjunction" `Quick test_venn_peirce_disjunction;
          Testutil.qtest prop_venn_peirce_entails_sound ] );
      ( "syllogisms",
        [ Alcotest.test_case "counts" `Quick test_syllogism_counts;
          Alcotest.test_case "named forms" `Quick test_syllogism_named_forms;
          Alcotest.test_case "venn = semantic" `Quick
            test_syllogism_venn_matches_semantic;
          Testutil.qtest prop_valid_syllogisms_hold_on_dbs ] );
      ( "alpha",
        [ Testutil.qtest prop_alpha_roundtrip;
          Alcotest.test_case "modus ponens" `Quick
            test_alpha_rules_modus_ponens;
          Alcotest.test_case "side conditions" `Quick
            test_alpha_rule_side_conditions;
          Testutil.qtest prop_alpha_insertion_sound;
          Testutil.qtest prop_alpha_double_cut_equiv;
          Testutil.qtest prop_alpha_erasure_weakens ] );
      ( "beta",
        [ Testutil.qtest prop_beta_roundtrip;
          Testutil.qtest prop_beta_no_crossing_unambiguous;
          Alcotest.test_case "scope distinction" `Quick
            test_beta_scope_distinction;
          Alcotest.test_case "disconnected rejected" `Quick
            test_beta_disconnected_rejected;
          Alcotest.test_case "innermost vs outermost" `Quick
            test_beta_innermost_vs_outermost ] );
      ( "string-diagrams",
        [ Alcotest.test_case "roundtrip" `Quick test_string_diagram_roundtrip;
          Alcotest.test_case "bound wires" `Quick
            test_string_diagram_bound_wires ] );
      ( "qbe",
        [ Alcotest.test_case "division steps" `Quick test_qbe_division_steps;
          Alcotest.test_case "ascii shape" `Quick test_qbe_ascii_shape;
          Alcotest.test_case "goal slicing" `Quick
            test_qbe_needs_only_goal_rules ] );
      ( "dfql",
        [ Alcotest.test_case "structure" `Quick test_dfql_structure;
          Alcotest.test_case "ascii" `Quick test_dfql_ascii;
          Testutil.qtest prop_dfql_layout_no_overlap ] );
      ( "relational-diagrams",
        [ Alcotest.test_case "structure" `Quick test_rd_structure;
          Alcotest.test_case "reading eval" `Quick test_rd_roundtrip_eval;
          Alcotest.test_case "union panels" `Quick test_rd_panels_for_union;
          Alcotest.test_case "svg wellformed" `Quick test_rd_svg_wellformed;
          Alcotest.test_case "queryvis arrows" `Quick test_queryvis_arrows;
          Alcotest.test_case "cut depth" `Quick test_scene_cut_depth ] );
      ( "conceptual-graphs",
        [ Alcotest.test_case "build" `Quick test_conceptual_graph ] );
      ( "line-abuse",
        [ Alcotest.test_case "beta vs RD" `Quick test_line_abuse_contrast ] );
      ( "scene",
        [ Alcotest.test_case "ascii" `Quick test_scene_ascii_nonempty;
          Alcotest.test_case "svg escaping" `Quick test_svg_escaping ] );
      ( "constraint-diagrams",
        [ Alcotest.test_case "shading = All-are" `Quick
            test_constraint_shading_fol;
          Alcotest.test_case "spiders = existence" `Quick
            test_constraint_spiders;
          Alcotest.test_case "reading ambiguity" `Quick
            test_constraint_reading_ambiguity;
          Alcotest.test_case "errors" `Quick test_constraint_errors ] );
      ( "begriffsschrift",
        [ Testutil.qtest prop_begriffsschrift_roundtrip;
          Alcotest.test_case "ladder shape" `Quick test_begriffsschrift_shape;
          Alcotest.test_case "derived connectives" `Quick
            test_begriffsschrift_derived_connectives ] );
      ( "higraphs",
        [ Alcotest.test_case "schema higraph" `Quick test_higraph_schema;
          Alcotest.test_case "denoted states" `Quick test_higraph_states;
          Alcotest.test_case "errors" `Quick test_higraph_errors ] );
      ( "query-builder",
        [ Alcotest.test_case "conjunctive ok" `Quick
            test_builder_accepts_conjunctive;
          Alcotest.test_case "rejects negation" `Quick
            test_builder_rejects_negation;
          Alcotest.test_case "rejects deep or" `Quick
            test_builder_rejects_structured_disjunction ] );
      ( "sieuferd",
        [ Alcotest.test_case "header" `Quick test_sieuferd_header;
          Alcotest.test_case "nested rows" `Quick test_sieuferd_nested_rows;
          Alcotest.test_case "header encodes query" `Quick
            test_sieuferd_header_encodes_query ] );
      ( "tabletalk",
        [ Alcotest.test_case "flow" `Quick test_tabletalk_flow;
          Alcotest.test_case "rejects union" `Quick
            test_tabletalk_rejects_union ] );
      ( "layout",
        [ Testutil.qtest prop_scene_layout_containment ] );
      ( "dataplay",
        [ Alcotest.test_case "matching pane" `Quick test_dataplay_matches;
          Alcotest.test_case "flip ∀↔∃" `Quick test_dataplay_flip;
          Alcotest.test_case "scene" `Quick test_dataplay_scene ] );
      ( "sqlvis",
        [ Alcotest.test_case "syntax sensitivity" `Quick
            test_sqlvis_syntax_sensitivity;
          Alcotest.test_case "scene" `Quick test_sqlvis_scene ] );
      ( "alpha-proof-search",
        [ Alcotest.test_case "modus ponens" `Quick
            test_proof_search_modus_ponens;
          Alcotest.test_case "and elimination" `Quick
            test_proof_search_and_elim;
          Alcotest.test_case "double negation" `Quick
            test_proof_search_double_negation;
          Testutil.qtest prop_proof_search_sound ] );
    ]
